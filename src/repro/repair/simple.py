"""Baseline repairs: ground truth, delete, and standard imputation.

Standard imputation replaces detected numeric cells with the column mean /
median / mode and detected categorical cells with the column mode, computed
over the *undetected* cells (Table 1 rows 1-5).
"""

from __future__ import annotations

from collections import Counter
from typing import Optional, Set

import numpy as np

from repro.context import CleaningContext
from repro.dataset.table import Cell, Table, is_missing
from repro.repair.base import GENERIC, RepairMethod, blank_detected_cells


class GroundTruthRepair(RepairMethod):
    """Replaces detected cells with their ground-truth values (row 'GT').

    Simulates an optimal repair method; REIN uses it to bound what any
    repair could achieve given a detector's output.
    """

    name = "GT"
    category = GENERIC

    def _repair(self, context: CleaningContext, detections: Set[Cell]) -> Table:
        if context.clean is None:
            raise RuntimeError("ground-truth repair requires the clean table")
        repaired = context.dirty.copy()
        for row, column in detections:
            if column in repaired.schema and 0 <= row < repaired.n_rows:
                repaired.set_cell(row, column, context.clean.get_cell(row, column))
        return repaired


class DeleteRepair(RepairMethod):
    """Removes every row containing a detected cell (Table 1 row 2)."""

    name = "Delete"
    category = GENERIC

    def _repair(self, context: CleaningContext, detections: Set[Cell]):
        dirty_rows = {row for row, _ in detections}
        kept = [i for i in range(context.dirty.n_rows) if i not in dirty_rows]
        # kept_rows lets scenario evaluation map surviving rows back to the
        # aligned ground-truth indices.
        return context.dirty.select_rows(kept), {"kept_rows": kept}


class _StatImputeRepair(RepairMethod):
    """Shared machinery for mean/median/mode imputation."""

    numeric_stat: str = "mean"

    def _numeric_fill(self, values: np.ndarray) -> Optional[float]:
        finite = values[~np.isnan(values)]
        if len(finite) == 0:
            return None
        if self.numeric_stat == "mean":
            return float(finite.mean())
        if self.numeric_stat == "median":
            return float(np.median(finite))
        # Mode of a continuous column: most frequent rounded value.
        counts = Counter(np.round(finite, 6).tolist())
        return float(counts.most_common(1)[0][0])

    @staticmethod
    def _categorical_fill(column_values) -> Optional[str]:
        counts = Counter(
            str(v).strip() for v in column_values if not is_missing(v)
        )
        if not counts:
            return None
        return counts.most_common(1)[0][0]

    def _repair(self, context: CleaningContext, detections: Set[Cell]) -> Table:
        table = context.dirty
        blanked = blank_detected_cells(table, detections)
        repaired = blanked.copy()
        # Statistics come from undetected cells only.
        for column in table.column_names:
            holes = [
                i
                for i in range(table.n_rows)
                if is_missing(blanked.get_cell(i, column))
            ]
            if not holes:
                continue
            if table.schema.kind_of(column) == "numerical":
                fill = self._numeric_fill(blanked.as_float(column))
            else:
                fill = self._categorical_fill(blanked.column(column))
            if fill is None:
                continue
            for row in holes:
                repaired.set_cell(row, column, fill)
        return repaired


class MeanModeImputeRepair(_StatImputeRepair):
    """Mean for numeric cells, mode for categorical (Table 1 row 3)."""

    name = "Impute-Mean"
    numeric_stat = "mean"


class MedianModeImputeRepair(_StatImputeRepair):
    """Median for numeric cells, mode for categorical (row 4)."""

    name = "Impute-Median"
    numeric_stat = "median"


class ModeModeImputeRepair(_StatImputeRepair):
    """Mode for both numeric and categorical cells (row 5)."""

    name = "Impute-Mode"
    numeric_stat = "mode"
