"""Text renderers for the paper's tables and figure series.

The original figures are matplotlib plots; the benchmark harness re-emits
the same quantities as aligned text tables, bar rows, and series blocks so
every table/figure of the paper has a regenerable textual counterpart.
"""

from repro.reporting.render import (
    display_width,
    render_bars,
    render_matrix,
    render_runtime_panel,
    render_series,
    render_table,
)

__all__ = [
    "display_width",
    "render_bars",
    "render_matrix",
    "render_runtime_panel",
    "render_series",
    "render_table",
]
