"""Aligned text rendering helpers.

Alignment is computed on *display* width, not ``len()``: East-Asian
wide/fullwidth characters count two columns and combining marks count
zero, so tables with mixed-width unicode labels (dataset names, method
names from real-world configs) stay aligned in a terminal.
"""

from __future__ import annotations

import math
import unicodedata
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


def display_width(text: str) -> int:
    """Terminal column width of ``text`` (wide=2, combining=0, else 1)."""
    width = 0
    for ch in text:
        if unicodedata.combining(ch):
            continue
        width += 2 if unicodedata.east_asian_width(ch) in ("W", "F") else 1
    return width


def _pad(text: str, width: int) -> str:
    """Left-justify ``text`` to ``width`` display columns."""
    return text + " " * max(0, width - display_width(text))


def _format_cell(value: object, precision: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render an aligned text table with a header rule."""
    text_rows = [
        [_format_cell(v, precision) for v in row] for row in rows
    ]
    widths = [display_width(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], display_width(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(_pad(h, widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(_pad(c, widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def render_bars(
    values: Mapping[str, float],
    title: Optional[str] = None,
    width: int = 40,
    precision: int = 3,
) -> str:
    """Render a labeled horizontal bar chart (detection-count figures)."""
    if not values:
        return title or ""
    peak = max(abs(v) for v in values.values()) or 1.0
    label_width = max(display_width(k) for k in values)
    lines: List[str] = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(0, int(round(width * abs(value) / peak)))
        lines.append(
            f"{_pad(label, label_width)}  {bar} {_format_cell(float(value), precision)}"
        )
    return "\n".join(lines)


def render_matrix(
    names: Sequence[str],
    matrix: Sequence[Sequence[float]],
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render a symmetric matrix (the IoU heatmaps of Figure 2)."""
    headers = [""] + list(names)
    rows = [
        [name] + [matrix[i][j] for j in range(len(names))]
        for i, name in enumerate(names)
    ]
    return render_table(headers, rows, title=title, precision=precision)


def render_series(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    x_label: str,
    y_label: str,
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render line-plot data as one column per series (Figure 3 style).

    Degenerate inputs stay renderable: an empty mapping (or series whose
    point lists are all empty) produces just the title/header block, and
    NaN y-values render as ``nan`` cells like every other table.
    """
    xs: List[float] = sorted(
        {x for points in series.values() for x, _ in points}
    )
    lookup: Dict[str, Dict[float, float]] = {
        name: {x: y for x, y in points} for name, points in series.items()
    }
    headers = [x_label] + [f"{name} ({y_label})" for name in series]
    rows = []
    for x in xs:
        rows.append(
            [x] + [lookup[name].get(x) for name in series]
        )
    return render_table(headers, rows, title=title, precision=precision)


def render_runtime_panel(
    runtimes: Mapping[str, float],
    failures: Optional[Mapping[str, str]] = None,
    title: Optional[str] = None,
    width: int = 40,
    precision: int = 3,
) -> str:
    """Figure-2-style runtime panel: per-method seconds, slowest first.

    ``runtimes`` maps method name to total elapsed seconds (the feed is
    typically :func:`repro.observability.runtimes_from_ledger` or the
    runs themselves); methods listed in ``failures`` are marked with a
    trailing ``!`` and their failure category so crashed tools' honest
    runtimes stay visible instead of vanishing from the panel.
    """
    if not runtimes:
        return (title + "\n" if title else "") + "(no units finalized)"
    failures = failures or {}
    ordered = sorted(runtimes.items(), key=lambda kv: (-kv[1], kv[0]))
    labeled = {
        (f"{name} !{failures[name]}" if name in failures else name): seconds
        for name, seconds in ordered
    }
    total = sum(runtimes.values())
    body = render_bars(labeled, title=title, width=width, precision=precision)
    return f"{body}\n{'total'}  {_format_cell(total, precision)}s"
