"""Aligned text rendering helpers."""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


def _format_cell(value: object, precision: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render an aligned text table with a header rule."""
    text_rows = [
        [_format_cell(v, precision) for v in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def render_bars(
    values: Mapping[str, float],
    title: Optional[str] = None,
    width: int = 40,
    precision: int = 3,
) -> str:
    """Render a labeled horizontal bar chart (detection-count figures)."""
    if not values:
        return title or ""
    peak = max(abs(v) for v in values.values()) or 1.0
    label_width = max(len(k) for k in values)
    lines: List[str] = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(0, int(round(width * abs(value) / peak)))
        lines.append(
            f"{label.ljust(label_width)}  {bar} {_format_cell(float(value), precision)}"
        )
    return "\n".join(lines)


def render_matrix(
    names: Sequence[str],
    matrix: Sequence[Sequence[float]],
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render a symmetric matrix (the IoU heatmaps of Figure 2)."""
    headers = [""] + list(names)
    rows = [
        [name] + [matrix[i][j] for j in range(len(names))]
        for i, name in enumerate(names)
    ]
    return render_table(headers, rows, title=title, precision=precision)


def render_series(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    x_label: str,
    y_label: str,
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render line-plot data as one column per series (Figure 3 style)."""
    xs: List[float] = sorted(
        {x for points in series.values() for x, _ in points}
    )
    lookup: Dict[str, Dict[float, float]] = {
        name: {x: y for x, y in points} for name, points in series.items()
    }
    headers = [x_label] + [f"{name} ({y_label})" for name in series]
    rows = []
    for x in xs:
        rows.append(
            [x] + [lookup[name].get(x) for name in series]
        )
    return render_table(headers, rows, title=title, precision=precision)
