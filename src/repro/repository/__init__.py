"""Data repository: persistent storage for dataset versions and results.

Figure 1's architecture keeps the ground truth, the dirty data, and every
generated repaired version in a PostgreSQL repository; we provide the same
component on SQLite (bundled with Python), plus a results store that the
evaluation module writes experiment records into.
"""

from repro.repository.store import (
    BUSY_TIMEOUT_SECONDS,
    CheckpointStore,
    DataRepository,
    ResultRecord,
    ResultsStore,
    busy_retry,
    connect,
    is_busy_error,
)

__all__ = [
    "BUSY_TIMEOUT_SECONDS",
    "CheckpointStore",
    "DataRepository",
    "ResultRecord",
    "ResultsStore",
    "busy_retry",
    "connect",
    "is_busy_error",
]
