"""SQLite-backed stores for dataset versions and experiment results."""

from __future__ import annotations

import json
import math
import sqlite3
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, TypeVar

import numpy as np

from repro.dataset.schema import Schema
from repro.dataset.table import Table, is_missing

GROUND_TRUTH = "ground_truth"
DIRTY = "dirty"
REPAIRED = "repaired"

_VERSION_KINDS = (GROUND_TRUTH, DIRTY, REPAIRED)

#: Default time one connection waits for another's write lock before
#: surfacing SQLITE_BUSY.  Service workers hammer one queue/checkpoint
#: database concurrently, so the window is generous; one-shot CLI runs
#: never notice it.
BUSY_TIMEOUT_SECONDS = 5.0

_T = TypeVar("_T")


def connect(
    path: str,
    busy_timeout_seconds: float = BUSY_TIMEOUT_SECONDS,
    check_same_thread: bool = True,
) -> sqlite3.Connection:
    """Open one concurrency-hardened SQLite connection.

    Every store in the repository (and the service job queue built on
    top of it) goes through here so they share the same survival kit:
    WAL journal mode (readers never block the writer, a killed process
    leaves a recoverable log instead of a corrupt file), a
    ``busy_timeout`` so concurrent writers queue behind the lock instead
    of dying instantly with "database is locked", and ``synchronous
    NORMAL`` (durable at checkpoint boundaries, no fsync per statement).
    In-memory databases ignore the WAL pragma, which is harmless.
    """
    connection = sqlite3.connect(
        path, timeout=busy_timeout_seconds, check_same_thread=check_same_thread
    )
    connection.execute(
        f"PRAGMA busy_timeout={int(busy_timeout_seconds * 1000)}"
    )
    connection.execute("PRAGMA journal_mode=WAL")
    connection.execute("PRAGMA synchronous=NORMAL")
    return connection


def is_busy_error(exc: BaseException) -> bool:
    """True for SQLITE_BUSY / SQLITE_LOCKED shaped operational errors."""
    if not isinstance(exc, sqlite3.OperationalError):
        return False
    text = str(exc).lower()
    return "locked" in text or "busy" in text


def busy_retry(
    operation: Callable[[], _T],
    key: str = "sqlite",
    max_attempts: int = 4,
    sleep: Callable[[float], None] = time.sleep,
) -> _T:
    """Run one store operation, retrying SQLITE_BUSY contention.

    The busy timeout handles the common case; this guard covers the
    residue (lock acquired and released repeatedly under heavy worker
    concurrency).  Backoff delays come from the resilience layer's
    deterministic :class:`~repro.resilience.guards.RetryPolicy` schedule,
    and exhaustion re-raises as a taxonomy ``transient`` failure so
    callers under ``guarded_call`` classify (and may retry) it correctly.
    """
    # Imported lazily: repro.resilience.checkpoint imports this module,
    # so a module-level import here would be circular.
    from repro.resilience.failures import TransientError
    from repro.resilience.guards import RetryPolicy

    policy = RetryPolicy(max_attempts=max_attempts, base_delay=0.02)
    last: Optional[BaseException] = None
    for attempt in range(1, max_attempts + 1):
        try:
            return operation()
        except sqlite3.OperationalError as exc:
            if not is_busy_error(exc):
                raise
            last = exc
            if attempt < max_attempts:
                sleep(policy.delay(key, attempt))
    raise TransientError(
        f"database busy after {max_attempts} attempts: {last}"
    ) from last


def encode_cell_value(value: Any) -> Any:
    """Canonical JSON encoding of one table cell.

    Numpy scalars must map to their builtin equivalents -- ``np.int64``
    falling through to ``str`` used to round-trip integer cells as
    strings, silently corrupting reloaded numerical columns.
    """
    if is_missing(value):
        return None
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (bool, int, float)):
        return value
    return str(value)


_encode_cell = encode_cell_value


def sanitize_payload(value: Any) -> Any:
    """Replace NaN floats with None so payload JSON stays standard.

    ``json.dumps`` writes NaN as the non-standard ``NaN`` token, which
    external JSON tools reject.  Consumers restore missing scores with
    :func:`nan_guard`; legacy rows containing the literal token still
    parse (Python's reader accepts it), so both forms load.
    """
    if isinstance(value, float) and math.isnan(value):
        return None
    if isinstance(value, dict):
        return {key: sanitize_payload(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_payload(item) for item in value]
    return value


def nan_guard(value: Optional[float]) -> float:
    """Restore a possibly-null JSON score to its in-memory NaN form."""
    return math.nan if value is None else value


class DataRepository:
    """Stores ground-truth / dirty / repaired versions of benchmark tables.

    Versions are addressed by ``(dataset, kind, variant)``; the variant
    distinguishes repaired versions produced by different cleaning
    strategies (e.g. ``"RAHA+MISS-Mix"``).
    """

    def __init__(self, path: str = ":memory:") -> None:
        self._connection = connect(path)
        self._connection.execute(
            """
            CREATE TABLE IF NOT EXISTS versions (
                dataset TEXT NOT NULL,
                kind TEXT NOT NULL,
                variant TEXT NOT NULL DEFAULT '',
                schema_json TEXT NOT NULL,
                rows_json TEXT NOT NULL,
                metadata_json TEXT NOT NULL DEFAULT '{}',
                PRIMARY KEY (dataset, kind, variant)
            )
            """
        )
        self._connection.commit()

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "DataRepository":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def save_version(
        self,
        dataset: str,
        kind: str,
        table: Table,
        variant: str = "",
        metadata: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Insert or replace one stored table version.

        ``metadata`` persists provenance alongside the data (e.g. a Delete
        repair's ``kept_rows``, or the detector/repair names that produced
        a repaired variant).  It must be JSON-serializable.
        """
        if kind not in _VERSION_KINDS:
            raise ValueError(f"kind must be one of {_VERSION_KINDS}")
        schema_json = json.dumps(
            [(c.name, c.kind) for c in table.schema.columns]
        )
        rows = [
            [_encode_cell(v) for v in table.row(i)]
            for i in range(table.n_rows)
        ]
        self._connection.execute(
            "INSERT OR REPLACE INTO versions VALUES (?, ?, ?, ?, ?, ?)",
            (
                dataset,
                kind,
                variant,
                schema_json,
                json.dumps(rows),
                json.dumps(metadata or {}),
            ),
        )
        self._connection.commit()

    def load_version(
        self, dataset: str, kind: str, variant: str = ""
    ) -> Table:
        """Load one stored table version; KeyError when absent."""
        row = self._connection.execute(
            "SELECT schema_json, rows_json FROM versions "
            "WHERE dataset = ? AND kind = ? AND variant = ?",
            (dataset, kind, variant),
        ).fetchone()
        if row is None:
            raise KeyError(
                f"no stored version ({dataset!r}, {kind!r}, {variant!r})"
            )
        schema = Schema.from_pairs(json.loads(row[0]))
        return Table.from_rows(schema, json.loads(row[1]))

    def load_metadata(
        self, dataset: str, kind: str, variant: str = ""
    ) -> Dict[str, Any]:
        """Provenance metadata stored with a version; KeyError when absent."""
        row = self._connection.execute(
            "SELECT metadata_json FROM versions "
            "WHERE dataset = ? AND kind = ? AND variant = ?",
            (dataset, kind, variant),
        ).fetchone()
        if row is None:
            raise KeyError(
                f"no stored version ({dataset!r}, {kind!r}, {variant!r})"
            )
        return json.loads(row[0])

    def list_versions(self, dataset: Optional[str] = None) -> List[Tuple[str, str, str]]:
        """All stored ``(dataset, kind, variant)`` keys."""
        if dataset is None:
            cursor = self._connection.execute(
                "SELECT dataset, kind, variant FROM versions ORDER BY 1, 2, 3"
            )
        else:
            cursor = self._connection.execute(
                "SELECT dataset, kind, variant FROM versions "
                "WHERE dataset = ? ORDER BY 1, 2, 3",
                (dataset,),
            )
        return [tuple(r) for r in cursor.fetchall()]

    def delete_version(self, dataset: str, kind: str, variant: str = "") -> None:
        self._connection.execute(
            "DELETE FROM versions WHERE dataset = ? AND kind = ? AND variant = ?",
            (dataset, kind, variant),
        )
        self._connection.commit()


@dataclass(frozen=True)
class ResultRecord:
    """One experiment measurement."""

    dataset: str
    stage: str       # 'detection' | 'repair' | 'model'
    method: str      # detector / repair / model name (or combo)
    metric: str      # 'f1', 'rmse', 'runtime', ...
    value: float
    seed: int = 0
    scenario: str = ""


class ResultsStore:
    """Experiment-result log with simple aggregation queries."""

    def __init__(self, path: str = ":memory:") -> None:
        self._connection = connect(path)
        self._connection.execute(
            """
            CREATE TABLE IF NOT EXISTS results (
                dataset TEXT NOT NULL,
                stage TEXT NOT NULL,
                method TEXT NOT NULL,
                metric TEXT NOT NULL,
                value REAL,
                seed INTEGER NOT NULL DEFAULT 0,
                scenario TEXT NOT NULL DEFAULT ''
            )
            """
        )
        self._connection.commit()

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def add(self, record: ResultRecord) -> None:
        value = record.value
        if value is not None and math.isnan(value):
            value = None
        self._connection.execute(
            "INSERT INTO results VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                record.dataset,
                record.stage,
                record.method,
                record.metric,
                value,
                record.seed,
                record.scenario,
            ),
        )
        self._connection.commit()

    def add_many(self, records: Iterable[ResultRecord]) -> None:
        for record in records:
            self.add(record)

    def values(
        self,
        dataset: Optional[str] = None,
        stage: Optional[str] = None,
        method: Optional[str] = None,
        metric: Optional[str] = None,
        scenario: Optional[str] = None,
    ) -> List[float]:
        """All values matching the given filters (None = any)."""
        clauses, params = [], []
        for field, value in (
            ("dataset", dataset),
            ("stage", stage),
            ("method", method),
            ("metric", metric),
            ("scenario", scenario),
        ):
            if value is not None:
                clauses.append(f"{field} = ?")
                params.append(value)
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        cursor = self._connection.execute(
            f"SELECT value FROM results{where}", params
        )
        return [r[0] for r in cursor.fetchall() if r[0] is not None]

    def mean_by_method(
        self, dataset: str, stage: str, metric: str, scenario: str = ""
    ) -> Dict[str, float]:
        """Mean value per method for one (dataset, stage, metric)."""
        cursor = self._connection.execute(
            "SELECT method, AVG(value) FROM results "
            "WHERE dataset = ? AND stage = ? AND metric = ? AND scenario = ? "
            "AND value IS NOT NULL GROUP BY method",
            (dataset, stage, metric, scenario),
        )
        return {method: value for method, value in cursor.fetchall()}

    def count(self) -> int:
        return int(
            self._connection.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        )


class CheckpointStore:
    """Per-unit experiment checkpoints enabling resumable suite runs.

    Each completed unit of work -- one (dataset, stage, detector, repair,
    scenario, seed) combination -- is stored as a canonical JSON payload
    keyed by ``(run_id, unit)``.  An interrupted suite re-run with the
    same run id loads finished units from here and executes only the
    remainder, reproducing the uninterrupted results exactly.

    The store is tuned for the single-writer execution model of
    :mod:`repro.parallel`: the database runs in WAL mode (readers never
    block the writer) and :meth:`put` batches transaction commits --
    every ``commit_interval`` writes, plus an explicit :meth:`commit` /
    :meth:`close` flush -- instead of paying one fsync per unit.  Reads
    through the same connection always observe pending writes, so
    ``get``/``units`` stay consistent mid-batch.
    """

    def __init__(
        self, path: str = ":memory:", commit_interval: int = 64
    ) -> None:
        if commit_interval < 1:
            raise ValueError("commit_interval must be >= 1")
        self.commit_interval = commit_interval
        self._pending = 0
        self._connection = connect(path)
        self._connection.execute(
            """
            CREATE TABLE IF NOT EXISTS checkpoints (
                run_id TEXT NOT NULL,
                unit TEXT NOT NULL,
                payload_json TEXT NOT NULL,
                PRIMARY KEY (run_id, unit)
            )
            """
        )
        self._connection.commit()

    def commit(self) -> None:
        """Flush any batched writes to durable storage.

        Commits contend with concurrent service workers sharing one
        checkpoint database, so SQLITE_BUSY is retried before being
        surfaced as a transient failure.
        """
        busy_retry(self._connection.commit, key="checkpoint-commit")
        self._pending = 0

    def close(self) -> None:
        if self._pending:
            self.commit()
        self._connection.close()

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def put(self, run_id: str, unit: str, payload: Dict[str, Any]) -> None:
        """Insert or replace one completed unit's payload.

        NaN scores are encoded as ``null`` (:func:`sanitize_payload`) so
        the stored text is standard JSON; ``allow_nan=False`` guarantees
        no non-standard token ever reaches disk.  The write lands in the
        current batch transaction and becomes durable at the next
        :meth:`commit` (automatic every ``commit_interval`` puts).
        """
        text = json.dumps(
            sanitize_payload(payload), sort_keys=True, allow_nan=False
        )
        busy_retry(
            lambda: self._connection.execute(
                "INSERT OR REPLACE INTO checkpoints VALUES (?, ?, ?)",
                (run_id, unit, text),
            ),
            key=f"checkpoint-put/{unit}",
        )
        self._pending += 1
        if self._pending >= self.commit_interval:
            self.commit()

    def get(self, run_id: str, unit: str) -> Optional[Dict[str, Any]]:
        """The stored payload for one unit, or None when not yet done."""
        row = self._connection.execute(
            "SELECT payload_json FROM checkpoints "
            "WHERE run_id = ? AND unit = ?",
            (run_id, unit),
        ).fetchone()
        if row is None:
            return None
        return json.loads(row[0])

    def units(self, run_id: str) -> List[str]:
        """All completed unit keys for one run, sorted."""
        cursor = self._connection.execute(
            "SELECT unit FROM checkpoints WHERE run_id = ? ORDER BY unit",
            (run_id,),
        )
        return [r[0] for r in cursor.fetchall()]

    def clear_run(self, run_id: str) -> None:
        """Drop every checkpoint of one run (fresh, non-resumed start)."""
        self._connection.execute(
            "DELETE FROM checkpoints WHERE run_id = ?", (run_id,)
        )
        self.commit()

    def count(self, run_id: Optional[str] = None) -> int:
        if run_id is None:
            cursor = self._connection.execute(
                "SELECT COUNT(*) FROM checkpoints"
            )
        else:
            cursor = self._connection.execute(
                "SELECT COUNT(*) FROM checkpoints WHERE run_id = ?",
                (run_id,),
            )
        return int(cursor.fetchone()[0])
