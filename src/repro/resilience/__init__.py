"""Resilience layer: bounded, observable, recoverable benchmark execution.

REIN's field observation (Section 6.5) is that cleaning tools crash,
hang, and corrupt -- so the benchmark treats failure as a first-class
outcome.  This package supplies the three pillars:

- **execution guards** (:mod:`repro.resilience.guards`,
  :mod:`repro.resilience.deadline`): :func:`guarded_call` with per-stage
  wall-clock deadlines, retry with exponential backoff + deterministic
  jitter, and a per-method circuit breaker that quarantines a tool after
  K consecutive failures;
- a **structured failure taxonomy** (:mod:`repro.resilience.failures`):
  every failure becomes a :class:`FailureRecord` categorized as
  ``transient | capability | data | bug`` with honest elapsed time and
  retry counts -- plus output validation
  (:mod:`repro.resilience.validation`) that books corrupt repair outputs
  as ``data`` failures instead of scoring garbage;
- **checkpointed, resumable runs**
  (:mod:`repro.resilience.checkpoint`): per-unit results persisted to
  the SQLite repository so an interrupted suite resumes by skipping
  completed combinations.

The **chaos harness** (:mod:`repro.resilience.chaos`) injects seeded
faults through wrapper detectors/repairs so the tier-2 chaos test suite
can prove all of the above.
"""

from repro.resilience.chaos import (
    CorruptingRepair,
    CrashingDetector,
    FlakyDetector,
    FlakyRepair,
    HangingDetector,
    chaos_wrap_detectors,
)
from repro.resilience.checkpoint import (
    SuiteCheckpoint,
    run_id_for,
    table_from_payload,
    table_to_payload,
    unit_key,
)
from repro.resilience.deadline import Deadline, DeadlineExceeded
from repro.resilience.failures import (
    BUG,
    CAPABILITY,
    CATEGORIES,
    DATA,
    TRANSIENT,
    CorruptOutputError,
    FailureRecord,
    TransientError,
    classify_exception,
)
from repro.resilience.guards import (
    CircuitBreaker,
    GuardedResult,
    RetryPolicy,
    guarded_call,
)
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.validation import validate_repair_result

__all__ = [
    "BUG",
    "CAPABILITY",
    "CATEGORIES",
    "DATA",
    "TRANSIENT",
    "CircuitBreaker",
    "CorruptOutputError",
    "CorruptingRepair",
    "CrashingDetector",
    "Deadline",
    "DeadlineExceeded",
    "FailureRecord",
    "FlakyDetector",
    "FlakyRepair",
    "GuardedResult",
    "HangingDetector",
    "ResiliencePolicy",
    "RetryPolicy",
    "SuiteCheckpoint",
    "TransientError",
    "chaos_wrap_detectors",
    "classify_exception",
    "guarded_call",
    "run_id_for",
    "table_from_payload",
    "table_to_payload",
    "unit_key",
    "validate_repair_result",
]
