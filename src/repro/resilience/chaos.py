"""Chaos harness: fault-injecting wrappers for detectors and repairs.

These wrappers *prove* the resilience layer works instead of assuming it:
tier-2 chaos tests wrap real tools in seeded failure modes (raise
mid-detect, spin past the deadline, return misaligned or NaN-flooded
tables) and assert that the suite still completes with correct
bookkeeping -- every injected fault surfaces as a categorized
:class:`~repro.resilience.failures.FailureRecord`, never as a crash or an
unexplained NaN.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Optional, Set, Type

import numpy as np

from repro.context import CleaningContext
from repro.dataset.table import Cell, Table
from repro.detectors.base import Detector
from repro.repair.base import RepairMethod
from repro.resilience.failures import TransientError


class FlakyDetector(Detector):
    """Wraps a detector; raises on the first ``fail_first`` calls.

    With the default :class:`TransientError` the retry policy recovers it;
    with e.g. ``exc=MemoryError`` it models a capability crash.
    ``fail_first=None`` fails on every call.
    """

    def __init__(
        self,
        inner: Detector,
        fail_first: Optional[int] = 1,
        exc: Type[BaseException] = TransientError,
    ) -> None:
        self.inner = inner
        self.name = inner.name
        self.category = inner.category
        self.tackles = inner.tackles
        self.fail_first = fail_first
        self.exc = exc
        self.calls = 0

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        self.calls += 1
        if self.fail_first is None or self.calls <= self.fail_first:
            raise self.exc(
                f"injected {self.exc.__name__} on call {self.calls} "
                f"of {self.name}"
            )
        return self.inner._detect(context)


class CrashingDetector(Detector):
    """Always raises ``exc`` after optionally burning ``spend_seconds``
    of (injectable) clock -- models a tool that works for a while and
    then hits a hard boundary, so runtime accounting can be asserted."""

    name = "Crashing"

    def __init__(
        self,
        exc: Type[BaseException] = MemoryError,
        message: str = "injected crash",
        spend_seconds: float = 0.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.exc = exc
        self.message = message
        self.spend_seconds = spend_seconds
        self._sleep = sleep

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        if self.spend_seconds > 0:
            self._sleep(self.spend_seconds)
        raise self.exc(self.message)


class HangingDetector(Detector):
    """Spins until the context deadline expires (cooperatively).

    The spin loop calls ``deadline.check()`` every tick, exactly like a
    well-behaved long-running tool would, so exceeding the budget raises
    :class:`~repro.resilience.deadline.DeadlineExceeded` from inside the
    tool.  ``sleep`` is injectable so chaos tests can drive a fake clock
    instead of real waiting.  Without a deadline it gives up after
    ``max_spin_seconds`` and delegates (or returns nothing).
    """

    name = "Hanging"

    def __init__(
        self,
        inner: Optional[Detector] = None,
        tick: float = 0.01,
        max_spin_seconds: float = 1.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.inner = inner
        if inner is not None:
            self.name = inner.name
        self.tick = tick
        self.max_spin_seconds = max_spin_seconds
        self._sleep = sleep

    def _detect(self, context: CleaningContext) -> Set[Cell]:
        spun = 0.0
        while True:
            context.check_deadline(f"{self.name}._detect")
            if context.deadline is None and spun >= self.max_spin_seconds:
                break
            self._sleep(self.tick)
            spun += self.tick
        if self.inner is not None:
            return self.inner._detect(context)
        return set()


class FlakyRepair(RepairMethod):
    """Wraps a repair method; raises on the first ``fail_first`` calls."""

    def __init__(
        self,
        inner: RepairMethod,
        fail_first: Optional[int] = 1,
        exc: Type[BaseException] = TransientError,
    ) -> None:
        self.inner = inner
        self.name = inner.name
        self.category = inner.category
        self.fail_first = fail_first
        self.exc = exc
        self.calls = 0

    def _repair(self, context: CleaningContext, detections: Set[Cell]):
        self.calls += 1
        if self.fail_first is None or self.calls <= self.fail_first:
            raise self.exc(
                f"injected {self.exc.__name__} on call {self.calls} "
                f"of {self.name}"
            )
        return self.inner._repair(context, detections)


class CorruptingRepair(RepairMethod):
    """Wraps a repair method and corrupts its output.

    Modes:

    - ``misalign``: drop the last row without declaring ``kept_rows``;
    - ``nan_flood``: set every numerical cell to NaN;
    - ``schema_drift``: drop the last column.

    The wrapped table *returns successfully* -- only output validation in
    the runner can catch it, which is exactly what the chaos suite
    asserts.
    """

    MODES = ("misalign", "nan_flood", "schema_drift")

    def __init__(self, inner: RepairMethod, mode: str = "misalign") -> None:
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}")
        self.inner = inner
        self.name = inner.name
        self.category = inner.category
        self.mode = mode

    def _repair(self, context: CleaningContext, detections: Set[Cell]):
        output = self.inner._repair(context, detections)
        table = output[0] if isinstance(output, tuple) else output
        return self._corrupt(table)

    def _corrupt(self, table: Table) -> Table:
        if self.mode == "misalign":
            if table.n_rows <= 1:
                return Table.empty(table.schema)
            return table.select_rows(range(table.n_rows - 1))
        if self.mode == "schema_drift":
            names = table.schema.names
            return table.drop_columns(names[-1:])
        flooded = table.copy()
        for name in flooded.schema.numerical_names:
            for row in range(flooded.n_rows):
                flooded.set_cell(row, name, np.nan)
        return flooded


def chaos_wrap_detectors(
    detectors: Iterable[Detector],
    fail_first: Optional[int] = 1,
    exc: Type[BaseException] = TransientError,
) -> list:
    """Convenience: wrap every detector in a :class:`FlakyDetector`."""
    return [FlakyDetector(d, fail_first=fail_first, exc=exc) for d in detectors]
