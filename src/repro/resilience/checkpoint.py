"""Checkpointed, resumable benchmark runs.

Every unit of suite work -- one (dataset, stage, detector, repair,
model, scenario, seed) combination -- gets a canonical string key and a
JSON payload stored in the SQLite
:class:`~repro.repository.store.CheckpointStore`.  A suite launched with
the same run id skips completed units by loading their payloads, so an
interrupted run resumes exactly where it stopped and reproduces the
uninterrupted results.

Run ids are content-addressed (:func:`run_id_for` hashes the experiment
configuration), which makes "same config -> same run" automatic and
guards against resuming into a different experiment's checkpoints.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional

import numpy as np

from repro.dataset.schema import Schema
from repro.dataset.table import Table, is_missing
from repro.metrics.detection import DetectionScores
from repro.repository.store import CheckpointStore


def unit_key(
    stage: str,
    dataset: str,
    detector: str = "",
    repair: str = "",
    model: str = "",
    scenario: str = "",
    seed: int = 0,
) -> str:
    """Canonical key for one unit of suite work."""
    parts = (stage, dataset, detector, repair, model, scenario, str(seed))
    for part in parts:
        if "/" in part:
            raise ValueError(f"unit key component may not contain '/': {part!r}")
    return "/".join(parts)


def run_id_for(*parts: Any) -> str:
    """Content-addressed run id from any JSON-serializable parts."""
    text = json.dumps([str(p) for p in parts], sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# Table / scores payload helpers (shared by the runner's serializers)
# ----------------------------------------------------------------------
def _encode_cell_value(value: Any) -> Any:
    if is_missing(value):
        return None
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (bool, int, float)):
        return value
    return str(value)


def table_to_payload(table: Table) -> Dict[str, Any]:
    return {
        "schema": [[c.name, c.kind] for c in table.schema.columns],
        "rows": [
            [_encode_cell_value(v) for v in table.row(i)]
            for i in range(table.n_rows)
        ],
    }


def table_from_payload(payload: Dict[str, Any]) -> Table:
    schema = Schema.from_pairs([tuple(pair) for pair in payload["schema"]])
    return Table.from_rows(schema, payload["rows"])


def scores_to_payload(scores: DetectionScores) -> Dict[str, Any]:
    return {
        "precision": scores.precision,
        "recall": scores.recall,
        "f1": scores.f1,
        "true_positives": scores.true_positives,
        "false_positives": scores.false_positives,
        "false_negatives": scores.false_negatives,
    }


def scores_from_payload(payload: Dict[str, Any]) -> DetectionScores:
    return DetectionScores(**payload)


class SuiteCheckpoint:
    """One run's view over a :class:`CheckpointStore`.

    The runner asks :meth:`get` before executing a unit and :meth:`put`
    after; everything else (connection lifetime, fresh-vs-resume) is the
    caller's policy.
    """

    def __init__(self, store: CheckpointStore, run_id: str) -> None:
        self.store = store
        self.run_id = run_id

    @classmethod
    def open(
        cls, path: str, run_id: str, resume: bool = True
    ) -> "SuiteCheckpoint":
        """Open (and on ``resume=False`` reset) a run's checkpoints."""
        store = CheckpointStore(path)
        if not resume:
            store.clear_run(run_id)
        return cls(store, run_id)

    def get(self, unit: str) -> Optional[Dict[str, Any]]:
        return self.store.get(self.run_id, unit)

    def put(self, unit: str, payload: Dict[str, Any]) -> None:
        self.store.put(self.run_id, unit, payload)

    def completed_units(self) -> List[str]:
        return self.store.units(self.run_id)

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "SuiteCheckpoint":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
