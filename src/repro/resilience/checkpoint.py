"""Checkpointed, resumable benchmark runs.

Every unit of suite work -- one (dataset, stage, detector, repair,
model, scenario, seed) combination -- gets a canonical string key and a
JSON payload stored in the SQLite
:class:`~repro.repository.store.CheckpointStore`.  A suite launched with
the same run id skips completed units by loading their payloads, so an
interrupted run resumes exactly where it stopped and reproduces the
uninterrupted results.

Run ids are content-addressed (:func:`run_id_for` hashes the experiment
configuration), which makes "same config -> same run" automatic and
guards against resuming into a different experiment's checkpoints.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional

from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.metrics.detection import DetectionScores
from repro.repository.store import CheckpointStore, encode_cell_value, nan_guard


def unit_key(
    stage: str,
    dataset: str,
    detector: str = "",
    repair: str = "",
    model: str = "",
    scenario: str = "",
    seed: int = 0,
) -> str:
    """Canonical key for one unit of suite work."""
    parts = (stage, dataset, detector, repair, model, scenario, str(seed))
    for part in parts:
        if "/" in part:
            raise ValueError(f"unit key component may not contain '/': {part!r}")
    return "/".join(parts)


def _canonical_structure(value: Any) -> Any:
    """Reduce a configuration value to a JSON-stable canonical form.

    Strings, numbers, bools and None pass through (so ``"1"`` and ``1``
    stay distinct); dicts canonicalize recursively with string keys
    (``json.dumps(sort_keys=True)`` then fixes the ordering); lists and
    tuples keep their element structure instead of collapsing to
    ``str(...)``; sets are sorted for determinism.  Anything else is
    tagged with its type name so distinct objects with equal reprs do
    not collide.
    """
    if isinstance(value, dict):
        return {str(k): _canonical_structure(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical_structure(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_canonical_structure(v) for v in value), key=repr)
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return f"{type(value).__name__}:{value!r}"


def run_id_for(*parts: Any) -> str:
    """Content-addressed run id from the canonical JSON of the parts.

    Hashing the *structure* (not ``str(part)``) keeps distinct
    configurations distinct: ``run_id_for(["a", "b"])`` no longer
    collides with ``run_id_for("['a', 'b']")``, and dicts hash the same
    regardless of insertion order -- two different experiment configs can
    never silently share checkpoints.
    """
    text = json.dumps(
        [_canonical_structure(p) for p in parts],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(text.encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# Table / scores payload helpers (shared by the runner's serializers)
# ----------------------------------------------------------------------
#: One canonical cell encoder, shared with the repository store so table
#: payloads and stored versions can never drift apart.
_encode_cell_value = encode_cell_value


def table_to_payload(table: Table) -> Dict[str, Any]:
    return {
        "schema": [[c.name, c.kind] for c in table.schema.columns],
        "rows": [
            [_encode_cell_value(v) for v in table.row(i)]
            for i in range(table.n_rows)
        ],
    }


def table_from_payload(payload: Dict[str, Any]) -> Table:
    schema = Schema.from_pairs([tuple(pair) for pair in payload["schema"]])
    return Table.from_rows(schema, payload["rows"])


def scores_to_payload(scores: DetectionScores) -> Dict[str, Any]:
    return {
        "precision": scores.precision,
        "recall": scores.recall,
        "f1": scores.f1,
        "true_positives": scores.true_positives,
        "false_positives": scores.false_positives,
        "false_negatives": scores.false_negatives,
    }


def scores_from_payload(payload: Dict[str, Any]) -> DetectionScores:
    # Float fields may come back as null when a NaN score was stored
    # (standard-JSON payload hygiene); restore them explicitly.
    restored = dict(payload)
    for name in ("precision", "recall", "f1"):
        restored[name] = nan_guard(restored[name])
    return DetectionScores(**restored)


class SuiteCheckpoint:
    """One run's view over a :class:`CheckpointStore`.

    The runner asks :meth:`get` before executing a unit and :meth:`put`
    after; everything else (connection lifetime, fresh-vs-resume) is the
    caller's policy.
    """

    def __init__(self, store: CheckpointStore, run_id: str) -> None:
        self.store = store
        self.run_id = run_id

    @classmethod
    def open(
        cls, path: str, run_id: str, resume: bool = True
    ) -> "SuiteCheckpoint":
        """Open (and on ``resume=False`` reset) a run's checkpoints."""
        store = CheckpointStore(path)
        if not resume:
            store.clear_run(run_id)
        return cls(store, run_id)

    def get(self, unit: str) -> Optional[Dict[str, Any]]:
        return self.store.get(self.run_id, unit)

    def put(self, unit: str, payload: Dict[str, Any]) -> None:
        self.store.put(self.run_id, unit, payload)

    def flush(self) -> None:
        """Commit the store's batched writes (suite sync points)."""
        self.store.commit()

    def completed_units(self) -> List[str]:
        return self.store.units(self.run_id)

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "SuiteCheckpoint":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
