"""Cooperative wall-clock budgets for detector / repair execution.

A :class:`Deadline` carries a monotonic-clock budget.  The benchmark
runner creates one per guarded stage and hands it to the tool through the
:class:`~repro.context.CleaningContext`; well-behaved tools call
:meth:`Deadline.check` inside their hot loops so a runaway pass surfaces
as a :class:`DeadlineExceeded` instead of wedging the whole suite.  The
clock is injectable so tests can exhaust a budget without real waiting.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class DeadlineExceeded(RuntimeError):
    """Raised when a stage exhausts its wall-clock budget."""


class Deadline:
    """A monotonic wall-clock budget, cooperatively enforced.

    ``budget_seconds=None`` builds an unlimited deadline whose
    :meth:`check` never raises -- callers can thread it unconditionally.
    """

    def __init__(
        self,
        budget_seconds: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget_seconds is not None and budget_seconds <= 0:
            raise ValueError("budget_seconds must be positive or None")
        self.budget_seconds = budget_seconds
        self._clock = clock
        self._started = clock()

    @classmethod
    def unlimited(cls) -> "Deadline":
        return cls(None)

    def elapsed(self) -> float:
        return self._clock() - self._started

    def remaining(self) -> float:
        """Seconds left in the budget (``inf`` when unlimited)."""
        if self.budget_seconds is None:
            return float("inf")
        return self.budget_seconds - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, label: str = "") -> None:
        """Raise :class:`DeadlineExceeded` once the budget is spent."""
        if self.expired():
            where = f" in {label}" if label else ""
            raise DeadlineExceeded(
                f"wall-clock budget of {self.budget_seconds:.3f}s "
                f"exhausted{where} (elapsed {self.elapsed():.3f}s)"
            )

    def restarted(self) -> "Deadline":
        """A fresh deadline with the same budget, starting now."""
        return Deadline(self.budget_seconds, self._clock)

    def __repr__(self) -> str:
        if self.budget_seconds is None:
            return "Deadline(unlimited)"
        return (
            f"Deadline(budget={self.budget_seconds:.3f}s, "
            f"remaining={self.remaining():.3f}s)"
        )
