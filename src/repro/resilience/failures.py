"""Structured failure taxonomy for benchmark execution.

REIN's Section 6.5 catalogues the ways cleaning tools break in the field
(RAHA/ED2 crash on duplicate-bearing data, Picket past a size boundary).
Instead of stringly-typed ``failed``/``failure`` pairs, every failure in
the suite becomes a :class:`FailureRecord` with one of four categories:

- ``transient``  -- retryable flake (I/O hiccup, injected chaos); the
  retry policy may re-attempt these.
- ``capability`` -- the tool hit a known boundary (memory, deadline,
  recursion); retrying is pointless, quarantine may apply.
- ``data``       -- the tool choked on the data itself or produced a
  corrupt output (misaligned table, NaN flood, shape errors).
- ``bug``        -- anything else: an unexpected exception class, i.e.
  a defect in the tool or the harness.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.resilience.deadline import DeadlineExceeded

TRANSIENT = "transient"
CAPABILITY = "capability"
DATA = "data"
BUG = "bug"

CATEGORIES = (TRANSIENT, CAPABILITY, DATA, BUG)


class TransientError(RuntimeError):
    """A failure the caller may retry (used by chaos injection and any
    tool that wants to signal a recoverable flake)."""


class CorruptOutputError(ValueError):
    """A tool returned structurally unusable output (misaligned table,
    NaN-flooded columns, schema drift)."""


#: Exception classes mapped to taxonomy categories.  Order matters:
#: the first matching entry wins, so subclasses precede their parents.
_CLASSIFICATION = (
    (TransientError, TRANSIENT),
    ((ConnectionError, TimeoutError, InterruptedError), TRANSIENT),
    ((MemoryError, RecursionError, DeadlineExceeded), CAPABILITY),
    (CorruptOutputError, DATA),
    (
        (
            ValueError,
            KeyError,
            IndexError,
            ZeroDivisionError,
            ArithmeticError,
            np.linalg.LinAlgError,
        ),
        DATA,
    ),
)


def classify_exception(exc: BaseException) -> str:
    """Map an exception to its taxonomy category (default ``bug``)."""
    for types, category in _CLASSIFICATION:
        if isinstance(exc, types):
            return category
    return BUG


@dataclass
class FailureRecord:
    """One categorized benchmark failure.

    ``describe()`` keeps the legacy ``"ExcType: message"`` shape so
    existing reports and tests that grep the failure string still work.
    """

    method: str
    stage: str            # 'detection' | 'repair' | 'model'
    category: str         # transient | capability | data | bug
    error_type: str       # exception class name ('' for quarantine skips)
    message: str
    elapsed_seconds: float = 0.0
    retries: int = 0
    quarantined: bool = False
    context: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ValueError(
                f"category must be one of {CATEGORIES}, got {self.category!r}"
            )

    @classmethod
    def from_exception(
        cls,
        exc: BaseException,
        method: str,
        stage: str,
        elapsed_seconds: float = 0.0,
        retries: int = 0,
        **context: Any,
    ) -> "FailureRecord":
        return cls(
            method=method,
            stage=stage,
            category=classify_exception(exc),
            error_type=type(exc).__name__,
            message=str(exc),
            elapsed_seconds=elapsed_seconds,
            retries=retries,
            context=dict(context),
        )

    @classmethod
    def quarantine_skip(
        cls, method: str, stage: str, reason: str, **context: Any
    ) -> "FailureRecord":
        """A method skipped because its circuit breaker is open."""
        return cls(
            method=method,
            stage=stage,
            category=CAPABILITY,
            error_type="Quarantined",
            message=reason,
            quarantined=True,
            context=dict(context),
        )

    def describe(self) -> str:
        """Legacy one-line failure string (``"MemoryError: ..."``)."""
        if self.error_type:
            return f"{self.error_type}: {self.message}"
        return self.message

    def to_payload(self) -> Dict[str, Any]:
        payload = asdict(self)
        if math.isnan(payload["elapsed_seconds"]):
            payload["elapsed_seconds"] = 0.0
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "FailureRecord":
        return cls(**payload)

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FailureRecord":
        return cls.from_payload(json.loads(text))
