"""Execution guards: retry, circuit breaking, and the guarded-call boundary.

:func:`guarded_call` is the *single* sanctioned broad-except site of the
benchmark pipeline (``tools/check_exceptions.py`` enforces this).  It runs
one unit of untrusted detector / repair / model work and always returns a
:class:`GuardedResult`: either the value, or a categorized
:class:`~repro.resilience.failures.FailureRecord` with the elapsed time up
to the failure and the number of retries spent.  ``KeyboardInterrupt`` and
``SystemExit`` are never swallowed -- interrupting a suite must work, and
the checkpoint layer resumes it afterwards.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional

from repro.observability.telemetry import current_telemetry
from repro.observability.trace import ATTEMPT, UNIT
from repro.resilience.deadline import Deadline
from repro.resilience.failures import (
    TRANSIENT,
    FailureRecord,
    classify_exception,
)


class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    Only ``transient`` failures are retried -- re-running a tool that hit
    a memory boundary or produced corrupt output wastes the suite budget.
    Jitter is derived by hashing ``(key, attempt, seed)`` so a given suite
    configuration always produces the same backoff schedule (checkpointed
    resumes stay reproducible).
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        jitter_fraction: float = 0.5,
        seed: int = 0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be in [0, 1]")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.jitter_fraction = jitter_fraction
        self.seed = seed

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A single-attempt policy (no retries)."""
        return cls(max_attempts=1)

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Retry only transient failures with attempts remaining."""
        if attempt >= self.max_attempts:
            return False
        return classify_exception(exc) == TRANSIENT

    def delay(self, key: str, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        raw = min(self.base_delay * (2 ** (attempt - 1)), self.max_delay)
        if self.jitter_fraction == 0.0:
            return raw
        digest = hashlib.sha256(
            f"{key}|{attempt}|{self.seed}".encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / float(2 ** 64)
        # Jitter shrinks the delay by up to jitter_fraction -- never grows
        # it, so the worst-case backoff stays bounded by max_delay.
        return raw * (1.0 - self.jitter_fraction * unit)

    def delays(self, key: str) -> Iterator[float]:
        for attempt in range(1, self.max_attempts):
            yield self.delay(key, attempt)


class CircuitBreaker:
    """Per-method quarantine after K *consecutive* failures.

    The suite keeps one breaker per run; a detector or repair that fails
    ``threshold`` times in a row (across datasets) is quarantined and
    skipped for the remainder of the run, with the reason recorded --
    mirroring how REIN reports tools that "stopped working" instead of
    letting one broken tool stall every remaining experiment.
    """

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self._consecutive: Dict[str, int] = {}
        self._reasons: Dict[str, str] = {}

    def record_success(self, method: str) -> None:
        self._consecutive[method] = 0

    def record_failure(self, method: str, reason: str = "") -> None:
        count = self._consecutive.get(method, 0) + 1
        self._consecutive[method] = count
        if count >= self.threshold and method not in self._reasons:
            detail = f"; last failure: {reason}" if reason else ""
            self._reasons[method] = (
                f"quarantined after {count} consecutive failures{detail}"
            )

    def is_quarantined(self, method: str) -> bool:
        return method in self._reasons

    def reason(self, method: str) -> str:
        return self._reasons.get(method, "")

    def failures(self, method: str) -> int:
        return self._consecutive.get(method, 0)

    @property
    def quarantined(self) -> Dict[str, str]:
        """Mapping of quarantined method name -> recorded reason."""
        return dict(self._reasons)

    # ------------------------------------------------------------------
    # Snapshot / merge (parallel execution sync points)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Picklable view of the breaker's state."""
        return {
            "threshold": self.threshold,
            "consecutive": dict(self._consecutive),
            "reasons": dict(self._reasons),
        }

    @classmethod
    def from_snapshot(cls, state: Dict[str, Any]) -> "CircuitBreaker":
        breaker = cls(threshold=state["threshold"])
        breaker._consecutive = dict(state["consecutive"])
        breaker._reasons = dict(state["reasons"])
        return breaker

    def merge(self, other: "CircuitBreaker") -> None:
        """Fold another breaker's state into this one (sync points).

        Quarantines are sticky (the first recorded reason wins) and the
        pessimistic consecutive-failure count is kept, so merging worker
        views can only tighten, never loosen, the quarantine set.
        """
        for method, count in other._consecutive.items():
            self._consecutive[method] = max(
                self._consecutive.get(method, 0), count
            )
        for method, reason in other._reasons.items():
            self._reasons.setdefault(method, reason)


@dataclass
class GuardedResult:
    """Outcome of one guarded call: a value or a failure, never both."""

    value: Any = None
    failure: Optional[FailureRecord] = None
    elapsed_seconds: float = 0.0
    retries: int = 0
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.failure is None


def guarded_call(
    fn: Callable[[], Any],
    method: str,
    stage: str,
    deadline: Optional[Deadline] = None,
    retry: Optional[RetryPolicy] = None,
    breaker: Optional[CircuitBreaker] = None,
    clock: Optional[Callable[[], float]] = None,
    sleep: Callable[[float], None] = time.sleep,
    **failure_context: Any,
) -> GuardedResult:
    """Run ``fn`` under quarantine / deadline / retry guards.

    The elapsed time covers every attempt including backoff-free failure
    time, so crashed tools still report honest runtimes.  ``clock`` is
    injectable (defaults to ``time.perf_counter``) so chaos tests can make
    timing deterministic.

    When a telemetry session is installed
    (:func:`repro.observability.current_telemetry`), each call records a
    ``unit`` span with one ``attempt`` child per try, plus unit/retry
    counters and a compute-time histogram -- on the *process-local*
    telemetry, so worker processes buffer their own spans for the
    driver's deterministic merge.  Without telemetry the overhead is one
    global read; the returned result is identical either way.
    """
    clock = clock or time.perf_counter
    retry = retry or RetryPolicy.none()
    telemetry = current_telemetry()
    if breaker is not None and breaker.is_quarantined(method):
        if telemetry is not None:
            telemetry.count("units.quarantine_skips")
        return GuardedResult(
            failure=FailureRecord.quarantine_skip(
                method, stage, breaker.reason(method), **failure_context
            )
        )
    unit_span = None
    if telemetry is not None:
        unit_span = telemetry.tracer.begin(
            f"{stage}:{method}", UNIT, stage=stage, method=method,
            **{
                key: value
                for key, value in failure_context.items()
                if isinstance(value, (str, int, float, bool))
            },
        )

    def book(outcome: str, elapsed: float, retries: int) -> None:
        """Close the unit span and record the unit's metrics."""
        if telemetry is None:
            return
        unit_span.attrs["outcome"] = outcome
        telemetry.tracer.finish(unit_span)
        telemetry.count(f"units.{outcome}")
        if retries:
            telemetry.count("retries", retries)
        telemetry.observe("unit.compute_seconds", elapsed)

    started = clock()
    attempt = 0
    while True:
        attempt += 1
        if deadline is not None and deadline.expired():
            elapsed = clock() - started
            record = FailureRecord(
                method=method,
                stage=stage,
                category="capability",
                error_type="DeadlineExceeded",
                message=(
                    f"budget of {deadline.budget_seconds}s exhausted "
                    "before attempt could start"
                ),
                elapsed_seconds=elapsed,
                retries=attempt - 1,
                context=dict(failure_context),
            )
            if breaker is not None:
                breaker.record_failure(method, record.describe())
            book("failed", elapsed, attempt - 1)
            return GuardedResult(
                failure=record, elapsed_seconds=elapsed, retries=attempt - 1
            )
        try:
            if telemetry is not None:
                with telemetry.tracer.span(f"attempt-{attempt}", ATTEMPT):
                    value = fn()
            else:
                value = fn()
        except Exception as exc:  # noqa: BLE001 - sanctioned failure boundary
            if retry.should_retry(exc, attempt):
                sleep(retry.delay(f"{stage}:{method}", attempt))
                continue
            elapsed = clock() - started
            record = FailureRecord.from_exception(
                exc,
                method,
                stage,
                elapsed_seconds=elapsed,
                retries=attempt - 1,
                **failure_context,
            )
            if breaker is not None:
                breaker.record_failure(method, record.describe())
            book("failed", elapsed, attempt - 1)
            return GuardedResult(
                failure=record, elapsed_seconds=elapsed, retries=attempt - 1
            )
        elapsed = clock() - started
        if breaker is not None:
            breaker.record_success(method)
        book("ok", elapsed, attempt - 1)
        return GuardedResult(
            value=value, elapsed_seconds=elapsed, retries=attempt - 1
        )
