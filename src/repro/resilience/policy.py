"""The suite-level resilience policy: one object to thread everywhere.

Bundles the knobs of the resilience layer (per-stage deadline budget,
retry policy, circuit-breaker threshold, checkpoint store location and
resume behaviour) so :func:`repro.benchmark.config.run_experiment` and
the CLI can accept a single argument instead of six.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.parallel.engine import make_executor
from repro.resilience.checkpoint import SuiteCheckpoint, run_id_for
from repro.resilience.guards import CircuitBreaker, RetryPolicy


@dataclass
class ResiliencePolicy:
    """Configuration for guarded, checkpointed suite execution.

    Attributes:
        deadline_seconds: per-stage wall-clock budget (None = unlimited).
        retry: retry policy for transient failures (None = no retries).
        breaker_threshold: consecutive failures before a method is
            quarantined for the rest of the run (None = never).
        store_path: SQLite checkpoint database (None = no checkpointing).
        resume: keep existing checkpoints for this run id and skip the
            completed units; False wipes them for a fresh start.
        run_id: explicit run id; None derives one from the experiment
            configuration (same config -> same run).
        workers: worker processes for the execution engine (1 = serial
            reference; N > 1 shards the unit grid across N processes
            with results identical to serial).
        start_method: multiprocessing start method for the pool
            (``"fork"``, ``"spawn"``, ``"forkserver"``; None = platform
            default).  Results are byte-identical either way; only
            dispatch cost differs.
        chunk_size: units handed to a worker per dispatch; None picks an
            adaptive size from the grid and worker count.
        clock / sleep: injectable time sources so chaos tests can drive
            deterministic timing.
    """

    deadline_seconds: Optional[float] = None
    retry: Optional[RetryPolicy] = None
    breaker_threshold: Optional[int] = None
    store_path: Optional[str] = None
    resume: bool = False
    run_id: Optional[str] = None
    workers: int = 1
    start_method: Optional[str] = None
    chunk_size: Optional[int] = None
    clock: Optional[Callable[[], float]] = None
    sleep: Callable[[float], None] = field(default=time.sleep)

    def make_breaker(self) -> Optional[CircuitBreaker]:
        if self.breaker_threshold is None:
            return None
        return CircuitBreaker(threshold=self.breaker_threshold)

    def make_executor(self):
        """Executor implied by ``workers`` (None = serial reference)."""
        return make_executor(
            self.workers,
            start_method=self.start_method,
            chunk_size=self.chunk_size,
        )

    def open_checkpoint(self, *run_id_parts: object) -> Optional[SuiteCheckpoint]:
        """Open this policy's checkpoint view, or None when disabled."""
        if self.store_path is None:
            return None
        run_id = self.run_id or run_id_for(*run_id_parts)
        return SuiteCheckpoint.open(
            self.store_path, run_id, resume=self.resume
        )
