"""Structural validation of repair outputs.

A repair that *returns* is not necessarily a repair that *worked*: REIN
observed tools emitting misaligned tables or flooding columns with NaN.
:func:`validate_repair_result` turns those silent corruptions into
:class:`~repro.resilience.failures.CorruptOutputError` (``data`` category)
so the runner books them as failures instead of scoring garbage.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

import numpy as np

from repro.dataset.table import Cell, Table
from repro.repair.base import RepairResult
from repro.resilience.failures import CorruptOutputError


def validate_repair_result(
    result: RepairResult,
    dirty: Table,
    detections: Optional[Iterable[Cell]] = None,
) -> None:
    """Raise :class:`CorruptOutputError` on structurally unusable output.

    Checks, in order:

    - schema drift: the repaired table must keep the dirty table's columns;
    - misalignment: a shorter/longer table is only acceptable when the
      method declares ``kept_rows`` provenance (the Delete repair does);
    - NaN flood: a numerical column that had values in the dirty table
      must not come back entirely missing -- unless *every* cell of the
      column was in ``detections``, in which case blanking them all is a
      (degenerate but) faithful execution of the instructions the repair
      was given.
    """
    repaired = result.repaired
    dirty_names = dirty.schema.names
    if repaired.schema.names != dirty_names:
        raise CorruptOutputError(
            f"schema drift: expected columns {dirty_names}, "
            f"got {repaired.schema.names}"
        )
    if repaired.n_rows != dirty.n_rows:
        kept = result.metadata.get("kept_rows")
        if kept is None or len(kept) != repaired.n_rows:
            raise CorruptOutputError(
                f"misaligned output: {repaired.n_rows} rows for a "
                f"{dirty.n_rows}-row input without kept_rows provenance"
            )
    detected: Set[Cell] = set(detections or ())
    for name in repaired.schema.numerical_names:
        column = repaired.as_float(name)
        if not len(column) or not np.all(np.isnan(column)):
            continue
        original = dirty.as_float(name)
        if not len(original) or np.all(np.isnan(original)):
            continue
        if all((row, name) in detected for row in range(dirty.n_rows)):
            continue
        raise CorruptOutputError(
            f"NaN flood: numerical column {name!r} came back "
            "entirely missing"
        )
