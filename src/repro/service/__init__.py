"""Benchmark-as-a-service: durable queue, fair-share scheduler, HTTP API.

REIN-style benchmarking is a standing workload, not a one-shot script:
many configurations, many users, long-running sweeps.  This package
turns the existing execution engines (resilience guards, parallel
engine, artifact cache, block-sharded out-of-core paths) into a small
multi-tenant service:

- :mod:`repro.service.jobs` -- the canonical, content-addressed job
  spec and the one-shot execution path shared by workers and the CLI;
- :mod:`repro.service.queue` -- a durable SQLite job queue with worker
  leases, heartbeat expiry, and exactly-once results;
- :mod:`repro.service.scheduler` -- priority classes, per-submitter
  fair share, and typed admission control;
- :mod:`repro.service.workers` -- the worker pool (real processes,
  SIGTERM-drainable, SIGKILL-survivable);
- :mod:`repro.service.api` -- the JSON HTTP API;
- :mod:`repro.service.daemon` -- :class:`BenchService`, the assembled
  deployment with graceful drain;
- :mod:`repro.service.client` -- a urllib client with typed errors;
- :mod:`repro.service.testing` -- execution doubles for tests and
  benchmarks.
"""

from repro.service.client import (
    JobFailed,
    RetryLater,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.daemon import BenchService
from repro.service.jobs import (
    JOB_KINDS,
    JOB_SCHEMA_VERSION,
    JobSpec,
    canonical_result_text,
    execute_job,
    execute_job_payload,
    strip_timing,
)
from repro.service.queue import (
    ACTIVE_STATES,
    CANCELLED,
    DONE,
    FAILED,
    JobQueue,
    JobStateError,
    LeasedJob,
    QUEUED,
    RUNNING,
    STATES,
    SubmitReceipt,
    UnknownJobError,
)
from repro.service.scheduler import (
    DEFAULT_PRIORITY_CLASSES,
    QueueDraining,
    QueueFull,
    SchedulerPolicy,
)
from repro.service.workers import (
    DEFAULT_EXECUTE_REF,
    ServiceWorker,
    WorkerPool,
    worker_main,
)

__all__ = [
    "ACTIVE_STATES",
    "BenchService",
    "CANCELLED",
    "DEFAULT_EXECUTE_REF",
    "DEFAULT_PRIORITY_CLASSES",
    "DONE",
    "FAILED",
    "JOB_KINDS",
    "JOB_SCHEMA_VERSION",
    "JobFailed",
    "JobQueue",
    "JobSpec",
    "JobStateError",
    "LeasedJob",
    "QUEUED",
    "QueueDraining",
    "QueueFull",
    "RUNNING",
    "RetryLater",
    "STATES",
    "SchedulerPolicy",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "ServiceWorker",
    "SubmitReceipt",
    "UnknownJobError",
    "WorkerPool",
    "canonical_result_text",
    "execute_job",
    "execute_job_payload",
    "strip_timing",
    "worker_main",
]
