"""JSON HTTP API over the job queue (stdlib ``http.server`` only).

Endpoints (all JSON)::

    POST /v1/jobs              submit a job spec     202 / 200 dedup
    GET  /v1/jobs              recent jobs           200
    GET  /v1/jobs/{id}         job status            200
    GET  /v1/jobs/{id}/result  canonical result      200 / 409 pending
    POST /v1/jobs/{id}/cancel  cancel a queued job   200 / 409
    GET  /v1/queue/stats       depths + counters     200
    GET  /v1/metrics           service telemetry     200
    GET  /v1/health            liveness              200 / 503 draining

Every route declares a request timeout (enforced on the client socket,
linted by ``tools/check_service_endpoints.py``), and every failure --
raised anywhere in a handler -- is mapped through the PR 1 failure
taxonomy to an HTTP status: ``transient`` 503 (with ``Retry-After``),
``capability`` 504, ``data`` 422, ``bug`` 500.  Typed service errors
(:class:`~repro.service.scheduler.QueueFull` -> 429, draining -> 503)
ride on top of that base mapping.

The result endpoint serves the stored canonical result text *verbatim*,
so the bytes a client receives are exactly the bytes ``repro submit
--inline`` prints for the same config -- the acceptance contract.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.resilience.failures import (
    BUG,
    CAPABILITY,
    DATA,
    TRANSIENT,
    classify_exception,
)
from repro.service.jobs import JobSpec
from repro.service.queue import (
    DONE,
    FAILED,
    JobStateError,
    UnknownJobError,
)
from repro.service.scheduler import QueueDraining, QueueFull

#: Failure-taxonomy category -> HTTP status code.
STATUS_BY_CATEGORY = {
    TRANSIENT: 503,
    CAPABILITY: 504,
    DATA: 422,
    BUG: 500,
}

#: Submission bodies larger than this are rejected outright.
MAX_BODY_BYTES = 1 << 20


class ApiError(Exception):
    """An error with an explicit HTTP status and JSON body."""

    status = 500

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        headers: Optional[Dict[str, str]] = None,
        **extra: Any,
    ) -> None:
        super().__init__(message)
        if status is not None:
            self.status = status
        self.headers = headers or {}
        self.extra = extra

    def to_payload(self) -> Dict[str, Any]:
        payload = {"error": str(self), "status": self.status}
        payload.update(self.extra)
        return payload


class BadRequest(ApiError):
    status = 400


class NotFound(ApiError):
    status = 404


class MethodNotAllowed(ApiError):
    status = 405


class Conflict(ApiError):
    status = 409


class PayloadTooLarge(ApiError):
    status = 413


@dataclass(frozen=True)
class Request:
    """What a handler sees: path parameters and the parsed JSON body."""

    params: Dict[str, str]
    body: Optional[Dict[str, Any]]


@dataclass(frozen=True)
class Response:
    """What a handler returns; ``text`` bypasses JSON encoding (used to
    serve stored canonical result bytes verbatim)."""

    status: int = 200
    payload: Optional[Dict[str, Any]] = None
    text: Optional[str] = None
    headers: Optional[Dict[str, str]] = None


@dataclass(frozen=True)
class Route:
    method: str
    pattern: str
    timeout: float
    handler: Callable[..., Response]
    _regex: "re.Pattern[str]" = None  # type: ignore[assignment]

    def match(self, path: str) -> Optional[Dict[str, str]]:
        found = self._regex.fullmatch(path)
        return dict(found.groupdict()) if found else None


ROUTES: List[Route] = []


def _compile(pattern: str) -> "re.Pattern[str]":
    parts = []
    for piece in re.split(r"(\{[a-z_]+\})", pattern):
        if piece.startswith("{") and piece.endswith("}"):
            parts.append(f"(?P<{piece[1:-1]}>[^/]+)")
        else:
            parts.append(re.escape(piece))
    return re.compile("".join(parts))


def route(method: str, pattern: str, *, timeout: float):
    """Register one API handler with its mandatory request timeout."""
    if not isinstance(timeout, (int, float)) or timeout <= 0:
        raise ValueError("every route must declare a positive timeout")

    def register(handler: Callable[..., Response]) -> Callable[..., Response]:
        ROUTES.append(
            Route(
                method=method,
                pattern=pattern,
                timeout=float(timeout),
                handler=handler,
                _regex=_compile(pattern),
            )
        )
        return handler

    return register


# ----------------------------------------------------------------------
# Handlers.  Each takes (service, request) and returns a Response; the
# dispatcher owns timeouts, serialization and failure mapping.
# ----------------------------------------------------------------------
@route("POST", "/v1/jobs", timeout=30.0)
def submit_job(service, request: Request) -> Response:
    if request.body is None:
        raise BadRequest("submission body must be a JSON object")
    body = dict(request.body)
    priority = body.pop("priority", None)
    submitter = body.pop("submitter", "anonymous")
    if not isinstance(submitter, str) or not submitter:
        raise BadRequest("submitter must be a non-empty string")
    try:
        spec = JobSpec.from_payload(body)
        receipt = service.queue.submit(
            spec, priority=priority, submitter=submitter
        )
    except ValueError as exc:
        raise BadRequest(f"malformed job config: {exc}") from exc
    payload = receipt.to_payload()
    payload["location"] = f"/v1/jobs/{receipt.job_id}"
    return Response(
        status=200 if receipt.deduplicated else 202, payload=payload
    )


@route("GET", "/v1/jobs", timeout=10.0)
def list_jobs(service, request: Request) -> Response:
    return Response(payload={"jobs": service.queue.list_jobs()})


@route("GET", "/v1/jobs/{job_id}", timeout=10.0)
def job_status(service, request: Request) -> Response:
    return Response(payload=service.queue.get(request.params["job_id"]))


@route("GET", "/v1/jobs/{job_id}/result", timeout=10.0)
def job_result(service, request: Request) -> Response:
    job_id = request.params["job_id"]
    record = service.queue.get(job_id)
    if record["state"] == DONE:
        return Response(text=service.queue.result_text(job_id))
    if record["state"] == FAILED:
        failure = record.get("failure") or {}
        status = STATUS_BY_CATEGORY.get(failure.get("category"), 500)
        return Response(
            status=status,
            payload={
                "error": f"job {job_id} failed",
                "status": status,
                "failure": failure,
            },
        )
    raise Conflict(
        f"job {job_id} is {record['state']}; result not available yet",
        state=record["state"],
    )


@route("POST", "/v1/jobs/{job_id}/cancel", timeout=10.0)
def cancel_job(service, request: Request) -> Response:
    job_id = request.params["job_id"]
    try:
        state = service.queue.cancel(job_id)
    except JobStateError as exc:
        raise Conflict(str(exc)) from exc
    return Response(payload={"job_id": job_id, "state": state})


@route("GET", "/v1/queue/stats", timeout=10.0)
def queue_stats(service, request: Request) -> Response:
    return Response(payload=service.queue.stats())


@route("GET", "/v1/metrics", timeout=10.0)
def metrics(service, request: Request) -> Response:
    return Response(payload=service.metrics_snapshot())


@route("GET", "/v1/health", timeout=5.0)
def health(service, request: Request) -> Response:
    if service.queue.draining():
        return Response(
            status=503, payload={"status": "draining"},
            headers={"Retry-After": "5"},
        )
    return Response(payload={"status": "ok"})


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
def error_response(exc: BaseException) -> Response:
    """Map any failure to its HTTP shape.

    Typed API errors carry their own status; typed queue/scheduler
    errors get their conventional codes; everything else goes through
    :func:`classify_exception` so the taxonomy decides.
    """
    if isinstance(exc, ApiError):
        return Response(
            status=exc.status, payload=exc.to_payload(), headers=exc.headers
        )
    if isinstance(exc, QueueFull):
        return Response(
            status=429,
            payload={
                "error": str(exc),
                "status": 429,
                "retry_after_seconds": exc.retry_after_seconds,
            },
            headers={
                "Retry-After": str(max(1, int(exc.retry_after_seconds)))
            },
        )
    if isinstance(exc, QueueDraining):
        return Response(
            status=503,
            payload={"error": str(exc), "status": 503, "draining": True},
            headers={"Retry-After": "5"},
        )
    if isinstance(exc, UnknownJobError):
        return Response(
            status=404, payload={"error": str(exc), "status": 404}
        )
    category = classify_exception(exc)
    status = STATUS_BY_CATEGORY[category]
    headers = {"Retry-After": "1"} if category == TRANSIENT else {}
    return Response(
        status=status,
        payload={
            "error": f"{type(exc).__name__}: {exc}",
            "status": status,
            "category": category,
        },
        headers=headers,
    )


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to the registered handlers.

    One instance per request (``http.server``'s model); the long-lived
    state lives on ``self.server.service``.
    """

    protocol_version = "HTTP/1.1"
    server_version = "repro-bench"

    def log_message(self, format: str, *args: Any) -> None:
        """Silence stdlib request logging; the ledger is the log."""

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def _find_route(self) -> Tuple[Route, Dict[str, str]]:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        methods_seen = []
        for candidate in ROUTES:
            params = candidate.match(path)
            if params is None:
                continue
            if candidate.method == self.command:
                return candidate, params
            methods_seen.append(candidate.method)
        if methods_seen:
            raise MethodNotAllowed(
                f"{self.command} not allowed for {path}; "
                f"try {sorted(set(methods_seen))}"
            )
        raise NotFound(f"no such endpoint: {path}")

    def _read_body(self) -> Optional[Dict[str, Any]]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return None
        if length > MAX_BODY_BYTES:
            raise PayloadTooLarge(
                f"request body of {length} bytes exceeds "
                f"{MAX_BODY_BYTES}"
            )
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise BadRequest("request body must be a JSON object")
        return body

    def _dispatch(self, method: str) -> None:
        service = self.server.service
        try:
            found, params = self._find_route()
            # The declared per-route timeout bounds the whole exchange:
            # a stuck client or a wedged handler read can hold this
            # socket (and its thread) no longer than this.
            self.connection.settimeout(found.timeout)
            response = found.handler(
                service, Request(params=params, body=self._read_body())
            )
        except Exception as exc:  # the API's designated failure boundary
            response = error_response(exc)
            service.note_request_error(exc, response.status)
        self._send(response)

    def _send(self, response: Response) -> None:
        if response.text is not None:
            body = response.text.encode("utf-8")
        else:
            body = json.dumps(
                response.payload or {}, sort_keys=True, allow_nan=False
            ).encode("utf-8")
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (response.headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError, TimeoutError):
            # The client hung up or the route timeout fired mid-write;
            # nothing to salvage, the thread just finishes.
            self.close_connection = True


class BenchAPIServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`BenchService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: Any) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service


def start_api_server(
    service: Any, host: str = "127.0.0.1", port: int = 0
) -> Tuple[BenchAPIServer, threading.Thread]:
    """Bind and serve in a daemon thread; returns (server, thread).

    ``port=0`` binds an ephemeral port; read the real one from
    ``server.server_address``.
    """
    server = BenchAPIServer((host, port), service)
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.1},
        name="bench-api",
        daemon=True,
    )
    thread.start()
    return server, thread
