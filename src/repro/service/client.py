"""A small urllib client for the service API (tests, CLI, benchmarks).

Typed errors mirror the server's status mapping so callers branch on
exception type, not status-code integers: :class:`RetryLater` for 429
and 503 (carries the server's ``Retry-After`` hint), and
:class:`ServiceUnavailable` when the service cannot be reached at all --
the CLI maps that one to its distinct exit code.

All waiting (:meth:`ServiceClient.wait`) happens on deadlines from
``time.monotonic``, consistent with the rest of the codebase.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.service.queue import DONE, FAILED, CANCELLED

#: States a job can never leave; waiting past them is pointless.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


class ServiceError(RuntimeError):
    """The service answered with an error status."""

    def __init__(
        self, message: str, status: int, payload: Optional[Dict[str, Any]] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class RetryLater(ServiceError):
    """Backpressure (429) or draining (503): try again after a delay."""

    def __init__(
        self,
        message: str,
        status: int,
        payload: Optional[Dict[str, Any]] = None,
        retry_after_seconds: float = 1.0,
    ) -> None:
        super().__init__(message, status, payload)
        self.retry_after_seconds = retry_after_seconds


class JobFailed(ServiceError):
    """The job itself failed; ``payload['failure']`` has the record."""


class ServiceUnavailable(RuntimeError):
    """The service endpoint could not be reached at all."""


class ServiceClient:
    """Talks to one running service at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> "_Reply":
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                return _Reply(reply.status, reply.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            text = exc.read().decode("utf-8", errors="replace")
            raise _error_for(exc.code, text) from exc
        except (urllib.error.URLError, ConnectionError, TimeoutError, OSError) as exc:
            raise ServiceUnavailable(
                f"service at {self.base_url} unreachable: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def submit(
        self,
        spec_payload: Dict[str, Any],
        priority: Optional[str] = None,
        submitter: Optional[str] = None,
    ) -> Dict[str, Any]:
        body = dict(spec_payload)
        if priority is not None:
            body["priority"] = priority
        if submitter is not None:
            body["submitter"] = submitter
        return self._request("POST", "/v1/jobs", body).json()

    def submit_with_backoff(
        self,
        spec_payload: Dict[str, Any],
        priority: Optional[str] = None,
        submitter: Optional[str] = None,
        deadline_seconds: float = 60.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> Dict[str, Any]:
        """Submit, honouring the server's Retry-After under backpressure."""
        deadline = time.monotonic() + deadline_seconds
        while True:
            try:
                return self.submit(
                    spec_payload, priority=priority, submitter=submitter
                )
            except RetryLater as exc:
                if time.monotonic() >= deadline:
                    raise
                sleep(min(exc.retry_after_seconds,
                          max(0.0, deadline - time.monotonic())))

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}").json()

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/jobs").json()["jobs"]

    def result_text(self, job_id: str) -> str:
        """The canonical result JSON exactly as the service stores it."""
        return self._request("GET", f"/v1/jobs/{job_id}/result").text

    def result(self, job_id: str) -> Dict[str, Any]:
        return json.loads(self.result_text(job_id))

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel").json()

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/queue/stats").json()

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/metrics").json()

    def health(self) -> Dict[str, Any]:
        """Liveness payload; a draining service reports 503 but that is
        still an *answer*, so it comes back as ``{"status": "draining"}``
        instead of an exception."""
        try:
            return self._request("GET", "/v1/health").json()
        except RetryLater as exc:
            return exc.payload or {"status": "draining"}

    # ------------------------------------------------------------------
    # Waiting
    # ------------------------------------------------------------------
    def wait(
        self,
        job_id: str,
        deadline_seconds: float = 120.0,
        poll_seconds: float = 0.1,
        sleep: Callable[[float], None] = time.sleep,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state.

        Returns the final status record for ``done``; raises
        :class:`JobFailed` for ``failed``/``cancelled`` and
        :class:`TimeoutError` when the deadline passes first.
        """
        deadline = time.monotonic() + deadline_seconds
        while True:
            record = self.status(job_id)
            state = record["state"]
            if state == DONE:
                return record
            if state in (FAILED, CANCELLED):
                raise JobFailed(
                    f"job {job_id} ended {state}", status=500, payload=record
                )
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {state} after {deadline_seconds}s"
                )
            sleep(poll_seconds)

    def wait_all(
        self,
        job_ids: Iterable[str],
        deadline_seconds: float = 300.0,
        poll_seconds: float = 0.1,
    ) -> Dict[str, Dict[str, Any]]:
        deadline = time.monotonic() + deadline_seconds
        records: Dict[str, Dict[str, Any]] = {}
        for job_id in job_ids:
            remaining = max(0.0, deadline - time.monotonic())
            records[job_id] = self.wait(
                job_id, deadline_seconds=remaining, poll_seconds=poll_seconds
            )
        return records


class _Reply:
    def __init__(self, status: int, text: str) -> None:
        self.status = status
        self.text = text

    def json(self) -> Dict[str, Any]:
        return json.loads(self.text)


def _error_for(status: int, text: str) -> ServiceError:
    try:
        payload = json.loads(text)
        if not isinstance(payload, dict):
            payload = {"error": text}
    except json.JSONDecodeError:
        payload = {"error": text}
    message = payload.get("error", f"HTTP {status}")
    if status in (429, 503):
        return RetryLater(
            message,
            status,
            payload,
            retry_after_seconds=float(
                payload.get("retry_after_seconds", 1.0)
            ),
        )
    if "failure" in payload:
        return JobFailed(message, status, payload)
    return ServiceError(message, status, payload)
