"""The benchmark service daemon: worker pool + queue + HTTP API.

:class:`BenchService` owns the whole deployment for one queue database:

1. it ensures the queue schema exists, then **starts the worker pool
   before opening its own connection** -- forked children must not
   inherit an open SQLite handle (a child GC'ing an inherited connection
   can release the parent's POSIX locks);
2. it serves the JSON API from a thread pool
   (:class:`~repro.service.api.BenchAPIServer`);
3. on SIGTERM/SIGINT it *drains*: flips the persisted drain flag (which
   stops all leasing, in-process and in every worker process), SIGTERMs
   the workers so each finishes its in-flight job, joins them, flushes
   its telemetry into the run ledger, and only then stops the API and
   closes the queue.  Queued jobs stay queued -- durable across
   restarts; nothing in flight is abandoned mid-execution.
"""

from __future__ import annotations

import signal
import threading
from typing import Any, Dict, Optional

from repro.observability import RunLedger, Telemetry
from repro.service.api import BenchAPIServer, start_api_server
from repro.service.queue import JobQueue
from repro.service.scheduler import SchedulerPolicy
from repro.service.workers import DEFAULT_EXECUTE_REF, WorkerPool

SERVICE_STARTED = "service_started"
SERVICE_DRAINED = "service_drained"


class BenchService:
    """One running benchmark service (pool + queue + API)."""

    def __init__(
        self,
        queue_path: str,
        n_workers: int = 2,
        policy: Optional[SchedulerPolicy] = None,
        execute_ref: str = DEFAULT_EXECUTE_REF,
        store_path: Optional[str] = None,
        events_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        poll_seconds: float = 0.1,
        job_workers: int = 1,
    ) -> None:
        self.queue_path = str(queue_path)
        self.n_workers = n_workers
        self.job_workers = job_workers
        self.policy = policy or SchedulerPolicy()
        self.execute_ref = execute_ref
        self.store_path = store_path
        self.events_path = events_path
        self.host = host
        self.requested_port = port
        self.poll_seconds = poll_seconds
        self.queue: Optional[JobQueue] = None
        self.pool: Optional[WorkerPool] = None
        self.httpd: Optional[BenchAPIServer] = None
        self.telemetry: Optional[Telemetry] = None
        self._ledger: Optional[RunLedger] = None
        self._api_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._drained = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "BenchService":
        if self.queue is not None:
            raise RuntimeError("service already started")
        # Create the schema with a throwaway connection, close it, THEN
        # fork the pool: the pool parent holds no open queue handle.
        # The drain flag left by a previous shutdown must be cleared
        # *before* the fork -- a worker that wins the race against an
        # un-drain issued afterwards would see it and exit for good.
        bootstrap = JobQueue(self.queue_path, policy=self.policy)
        bootstrap.set_draining(False)
        bootstrap.close()
        self.pool = WorkerPool(
            self.queue_path,
            self.n_workers,
            policy=self.policy,
            execute_ref=self.execute_ref,
            store_path=self.store_path,
            events_path=self.events_path,
            poll_seconds=self.poll_seconds,
            job_workers=self.job_workers,
        )
        self.pool.start()
        started = False
        try:
            self.queue = JobQueue(self.queue_path, policy=self.policy)
            if self.events_path is not None:
                self._ledger = RunLedger(self.events_path)
            self.telemetry = Telemetry(ledger=self._ledger)
            self.httpd, self._api_thread = start_api_server(
                self, host=self.host, port=self.requested_port
            )
            self.telemetry.event(
                SERVICE_STARTED,
                queue_path=self.queue_path,
                n_workers=self.n_workers,
                address=self.address,
            )
            started = True
        finally:
            if not started:
                # A failed boot (unwritable ledger path, port already
                # bound, ...) must not leak live worker processes; the
                # original exception propagates past this cleanup.
                self.drain(timeout=5.0)
        return self

    @property
    def address(self) -> str:
        if self.httpd is None:
            raise RuntimeError("service not started")
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def port(self) -> int:
        if self.httpd is None:
            raise RuntimeError("service not started")
        return self.httpd.server_address[1]

    def __enter__(self) -> "BenchService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.drain()

    # ------------------------------------------------------------------
    # API-facing surface (used by the request handlers)
    # ------------------------------------------------------------------
    def note_request_error(self, exc: BaseException, status: int) -> None:
        if self.telemetry is not None:
            self.telemetry.count("service.api.errors")
            self.telemetry.count(f"service.api.status.{status}")

    def metrics_snapshot(self) -> Dict[str, Any]:
        snapshot: Dict[str, Any] = {
            "workers": {
                "configured": self.n_workers,
                "alive": self.pool.alive_count() if self.pool else 0,
            },
            "queue": self.queue.stats() if self.queue else {},
        }
        if self.telemetry is not None:
            snapshot["metrics"] = self.telemetry.metrics.snapshot()
        return snapshot

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def drain(self, timeout: float = 30.0) -> bool:
        """Graceful shutdown; True when every worker exited in time.

        Safe to call twice (signal handler + finally block): the second
        call is a no-op.
        """
        if self._drained:
            return True
        self._drained = True
        clean = True
        if self.queue is not None:
            self.queue.set_draining(True)
        if self.pool is not None:
            self.pool.stop()
            clean = self.pool.join(timeout=timeout)
        if self.telemetry is not None:
            self.telemetry.event(
                SERVICE_DRAINED,
                clean=clean,
                stats=self.queue.stats() if self.queue else {},
            )
            self.telemetry.flush_to_ledger()
        if self._ledger is not None:
            self._ledger.close()
            self._ledger = None
        if self.httpd is not None:
            self.httpd.shutdown()
            self.httpd.server_close()
            if self._api_thread is not None:
                self._api_thread.join(timeout=5.0)
        if self.queue is not None:
            self.queue.close()
            self.queue = None
        return clean

    def serve_until_signalled(self) -> bool:
        """Block until SIGTERM/SIGINT, then drain.  Returns drain's
        cleanliness; the CLI turns it into the exit code."""

        def _signalled(signum, frame):  # noqa: ARG001 - handler shape
            self._stop.set()

        previous_term = signal.signal(signal.SIGTERM, _signalled)
        previous_int = signal.signal(signal.SIGINT, _signalled)
        try:
            self._stop.wait()
        finally:
            signal.signal(signal.SIGTERM, previous_term)
            signal.signal(signal.SIGINT, previous_int)
        return self.drain()
