"""Benchmark jobs: the canonical, content-addressed unit of service work.

A job is one declarative benchmark configuration -- the same vocabulary
the CLI stage commands speak (``detect`` / ``repair`` / ``model`` on one
dataset) -- reduced to a :class:`JobSpec` whose identity is the
content-addressed hash of its canonical structure
(:func:`~repro.resilience.checkpoint.run_id_for`).  Two submissions of
the same configuration are therefore *the same job*: the queue
deduplicates on ``job_id`` and the second submitter simply observes the
first submission's lifecycle.

Deduplication only works if a job's result is a pure function of its
spec, so :func:`execute_job` produces a *deterministic* canonical
payload: wall-clock readings (per-run ``runtime_seconds``, failure
``elapsed_seconds``) are stripped out of the result.  Timing belongs to
the observability ledger, where every job execution is tagged with its
job id; the result is the reproducible science.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence

from repro.benchmark.controller import BenchmarkController
from repro.benchmark.runner import (
    evaluate_scenarios,
    run_detection_suite,
    run_repair_suite,
)
from repro.benchmark.scenarios import ALL_SCENARIOS
from repro.datagen import DATASET_NAMES, dataset_spec, generate
from repro.repair.base import RepairMethod
from repro.repository.store import sanitize_payload
from repro.resilience.checkpoint import SuiteCheckpoint, run_id_for

JOB_KINDS = ("detect", "repair", "model")

#: Option keys each kind accepts; anything else is a malformed config.
_OPTION_KEYS = {
    "detect": {"detectors", "block_rows"},
    "repair": {"detectors", "repairs"},
    "model": {"model", "scenarios", "n_seeds", "sample_rows"},
}

#: Schema version folded into every job id: bump when the result payload
#: shape changes so stale cached results are never served for new specs.
JOB_SCHEMA_VERSION = 1


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


def _validate_name_list(value: Any, what: str, known: Sequence[str]) -> None:
    _require(
        isinstance(value, (list, tuple)) and len(value) > 0,
        f"{what} must be a non-empty list of names",
    )
    unknown = [n for n in value if n not in known]
    _require(not unknown, f"unknown {what} {unknown!r}")


@dataclass(frozen=True)
class JobSpec:
    """One declarative benchmark job (picklable, JSON-round-trippable).

    ``options`` refines the stage: detector/repair/model names from the
    registries, scenario names, seeds-per-scenario.  Validation happens
    at construction so a malformed config is rejected at the submission
    boundary (HTTP 400 / CLI exit 3) instead of crashing a worker.
    """

    kind: str
    dataset: str
    rows: int = 400
    seed: int = 0
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require(self.kind in JOB_KINDS, f"kind must be one of {JOB_KINDS}")
        _require(
            self.dataset in DATASET_NAMES,
            f"unknown dataset {self.dataset!r}",
        )
        _require(
            isinstance(self.rows, int) and self.rows >= 1,
            "rows must be a positive integer",
        )
        _require(isinstance(self.seed, int), "seed must be an integer")
        _require(
            isinstance(self.options, Mapping),
            "options must be a mapping",
        )
        allowed = _OPTION_KEYS[self.kind]
        extra = sorted(set(self.options) - allowed)
        _require(
            not extra,
            f"unknown option(s) {extra!r} for kind {self.kind!r} "
            f"(allowed: {sorted(allowed)})",
        )
        self._validate_options()

    def _validate_options(self) -> None:
        options = self.options
        if "detectors" in options:
            from repro.detectors import detector_registry

            _validate_name_list(
                options["detectors"], "detectors", detector_registry()
            )
        if "repairs" in options:
            from repro.repair import repair_registry

            registry = repair_registry()
            _validate_name_list(options["repairs"], "repairs", registry)
            non_generic = [
                n for n in options["repairs"]
                if not isinstance(registry[n], RepairMethod)
            ]
            _require(
                not non_generic,
                f"ML-oriented repairs produce models, not tables: "
                f"{non_generic!r}",
            )
        if "block_rows" in options:
            value = options["block_rows"]
            _require(
                isinstance(value, int) and value >= 1,
                "block_rows must be a positive integer",
            )
        if self.kind == "model":
            _require(
                dataset_spec(self.dataset).task is not None,
                f"{self.dataset!r} has no associated ML task",
            )
            from repro.ml.model_zoo import get_spec

            model = options.get("model", "DT")
            _require(isinstance(model, str), "model must be a string")
            get_spec(dataset_spec(self.dataset).task, model)
            scenarios = options.get("scenarios", ["S1", "S4"])
            _validate_name_list(
                scenarios, "scenarios", [s.name for s in ALL_SCENARIOS]
            )
            n_seeds = options.get("n_seeds", 3)
            _require(
                isinstance(n_seeds, int) and n_seeds >= 1,
                "n_seeds must be a positive integer",
            )
            sample_rows = options.get("sample_rows")
            _require(
                sample_rows is None
                or (isinstance(sample_rows, int) and sample_rows >= 1),
                "sample_rows must be a positive integer",
            )

    @property
    def job_id(self) -> str:
        """Content-addressed identity: same config, same job."""
        return run_id_for(
            "service-job",
            JOB_SCHEMA_VERSION,
            self.kind,
            self.dataset,
            self.rows,
            self.seed,
            dict(self.options),
        )

    def to_payload(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "dataset": self.dataset,
            "rows": self.rows,
            "seed": self.seed,
            "options": dict(self.options),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "JobSpec":
        _require(isinstance(payload, Mapping), "job spec must be an object")
        extra = sorted(
            set(payload) - {"kind", "dataset", "rows", "seed", "options"}
        )
        _require(not extra, f"unknown job spec field(s) {extra!r}")
        _require("kind" in payload, "job spec needs a 'kind'")
        _require("dataset" in payload, "job spec needs a 'dataset'")
        return cls(
            kind=payload["kind"],
            dataset=payload["dataset"],
            rows=payload.get("rows", 400),
            seed=payload.get("seed", 0),
            options=dict(payload.get("options") or {}),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"job spec is not valid JSON: {exc}") from exc
        return cls.from_payload(payload)


# ----------------------------------------------------------------------
# Deterministic result payloads
# ----------------------------------------------------------------------
def strip_timing(payload: Any) -> Any:
    """Zero out wall-clock fields so results are config-deterministic.

    ``runtime_seconds`` and ``elapsed_seconds`` are honest measurements
    in one-shot reports, but a deduplicated, content-addressed result
    must not depend on which run of the same config produced it.  The
    measured timings still reach the observability ledger untouched.
    """
    if isinstance(payload, dict):
        cleaned = {}
        for key, value in payload.items():
            if key == "runtime_seconds":
                cleaned[key] = None
            elif key == "elapsed_seconds":
                cleaned[key] = 0.0
            else:
                cleaned[key] = strip_timing(value)
        return cleaned
    if isinstance(payload, (list, tuple)):
        return [strip_timing(item) for item in payload]
    return payload


def canonical_result_text(payload: Mapping[str, Any]) -> str:
    """The one canonical JSON encoding of a job result.

    Both the service (stored ``result_json``, served verbatim by the
    result endpoint) and the one-shot CLI (``repro submit --inline``)
    emit exactly this text, which is what makes the byte-identity
    acceptance check meaningful.
    """
    return json.dumps(
        sanitize_payload(payload), sort_keys=True, allow_nan=False,
        separators=(",", ":"),
    )


def _default_repair_names() -> Sequence[str]:
    return ("GT", "Impute-Mean", "MISS-Mix")


def execute_job(
    spec: JobSpec,
    store_path: Optional[str] = None,
    telemetry: Any = None,
    executor: Any = None,
    clock: Optional[Callable[[], float]] = None,
    sleep: Optional[Callable[[float], None]] = None,
) -> Dict[str, Any]:
    """Execute one job through the existing engines; returns the result.

    This is *the* one-shot execution path: service workers and the
    ``repro submit --inline`` CLI both call it, so a job's service
    result is byte-identical to its local run by construction.

    ``store_path`` opens a per-job :class:`SuiteCheckpoint` (run id =
    job id, always resuming), so a job interrupted by a worker kill
    re-executes only its unfinished units.  ``clock``/``sleep`` are
    chaos-test injection points forwarded to the suite guards.
    """
    dataset = generate(spec.dataset, n_rows=spec.rows, seed=spec.seed)
    checkpoint = (
        SuiteCheckpoint.open(store_path, spec.job_id, resume=True)
        if store_path is not None
        else None
    )
    guard_kwargs: Dict[str, Any] = {
        "seed": spec.seed,
        "checkpoint": checkpoint,
        "executor": executor,
        "telemetry": telemetry,
    }
    if clock is not None:
        guard_kwargs["clock"] = clock
    if sleep is not None:
        guard_kwargs["sleep"] = sleep
    try:
        if spec.kind == "detect":
            body = _execute_detect(spec, dataset, guard_kwargs)
        elif spec.kind == "repair":
            body = _execute_repair(spec, dataset, guard_kwargs)
        else:
            body = _execute_model(spec, dataset, guard_kwargs)
    finally:
        if checkpoint is not None:
            checkpoint.close()
    result: Dict[str, Any] = {
        "schema": JOB_SCHEMA_VERSION,
        "job_id": spec.job_id,
        "spec": spec.to_payload(),
    }
    result.update(body)
    return strip_timing(sanitize_payload(result))


def _resolve_detectors(spec: JobSpec, dataset) -> Sequence[Any]:
    names = spec.options.get("detectors")
    if names is None:
        return BenchmarkController().applicable_detectors(dataset)
    from repro.detectors import detector_registry

    registry = detector_registry()
    return [registry[name] for name in names]


def _execute_detect(spec, dataset, guard_kwargs) -> Dict[str, Any]:
    runs = run_detection_suite(
        dataset,
        _resolve_detectors(spec, dataset),
        block_rows=spec.options.get("block_rows"),
        **guard_kwargs,
    )
    return {"kind": "detect", "runs": [r.to_payload() for r in runs]}


def _execute_repair(spec, dataset, guard_kwargs) -> Dict[str, Any]:
    from repro.repair import repair_registry

    detection_runs = run_detection_suite(
        dataset, _resolve_detectors(spec, dataset), **guard_kwargs
    )
    detections = {
        r.detector: set(r.result.cells)
        for r in detection_runs
        if not r.failed and r.result.n_detected
    }
    registry = repair_registry()
    repair_names = spec.options.get("repairs", _default_repair_names())
    repair_runs = run_repair_suite(
        dataset,
        detections,
        [registry[name] for name in repair_names],
        **guard_kwargs,
    )
    return {
        "kind": "repair",
        "detection_runs": [r.to_payload() for r in detection_runs],
        "repair_runs": [r.to_payload() for r in repair_runs],
    }


def _execute_model(spec, dataset, guard_kwargs) -> Dict[str, Any]:
    options = spec.options
    evaluation = evaluate_scenarios(
        dataset,
        dataset.dirty,
        "dirty",
        options.get("model", "DT"),
        scenario_names=tuple(options.get("scenarios", ["S1", "S4"])),
        n_seeds=options.get("n_seeds", 3),
        sample_rows=options.get("sample_rows"),
        checkpoint=guard_kwargs["checkpoint"],
        executor=guard_kwargs["executor"],
        telemetry=guard_kwargs["telemetry"],
        **{
            key: guard_kwargs[key]
            for key in ("clock", "sleep")
            if key in guard_kwargs
        },
    )
    return {
        "kind": "model",
        "variant": evaluation.variant,
        "model": evaluation.model,
        "scores": evaluation.scores,
        "failures": {
            scenario: {
                str(seed): record.to_payload()
                for seed, record in sorted(by_seed.items())
            }
            for scenario, by_seed in sorted(evaluation.failures.items())
        },
    }


def execute_job_payload(
    spec_payload: Mapping[str, Any], **context: Any
) -> Dict[str, Any]:
    """Worker-facing entry: spec payload in, result payload out.

    This is the default ``execute_ref`` a worker process resolves; test
    and benchmark doubles in :mod:`repro.service.testing` share its
    signature.
    """
    return execute_job(JobSpec.from_payload(spec_payload), **context)
