"""Durable SQLite-backed job queue with worker leases.

One ``jobs`` table is the whole truth: every state transition is a
single SQL transaction on a WAL-mode database
(:func:`repro.repository.store.connect`), so the queue survives killed
workers, killed daemons and concurrent access from API threads and
worker processes alike.

Job lifecycle::

    submit ──> queued ──lease──> leased ──start──> running ──> done
                 ^                 │                  │  \\
                 │   lease expiry  │    lease expiry  │   └──> failed
                 └─────────────────┴──────────────────┘   (attempts
                 (requeued; attempts < max_attempts)       exhausted)

    queued ──cancel──> cancelled          failed/cancelled ──submit──>
                                          queued (revived, same job_id)

Leases are the at-least-once delivery mechanism: a worker owns a job
only while its lease is live, heartbeats extend the lease on the
**monotonic** clock (``time.monotonic`` is system-wide on this single
host -- seconds since boot -- so readings from different processes are
comparable), and :meth:`JobQueue.requeue_expired` returns any job whose
worker went silent to the queue.  Completion is guarded by an ownership
check, so a worker that lost its lease (and whose job was re-executed
elsewhere) cannot overwrite the result: a killed worker never loses a
job *and* never duplicates one.

Deduplication: jobs are keyed by the content-addressed
:attr:`~repro.service.jobs.JobSpec.job_id`.  Re-submitting an active or
finished config returns the existing job (the CleanML insight: standing
benchmark infrastructure that many users *query* rather than re-run);
re-submitting a failed or cancelled one revives it.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.repository.store import connect
from repro.service.jobs import JobSpec, canonical_result_text
from repro.service.scheduler import (
    NEXT_JOB_SQL,
    QueueDraining,
    SchedulerPolicy,
)

# Job states.
QUEUED = "queued"
LEASED = "leased"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (QUEUED, LEASED, RUNNING, DONE, FAILED, CANCELLED)

#: States in which a job will still produce (or has produced) a result.
ACTIVE_STATES = (QUEUED, LEASED, RUNNING)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id TEXT PRIMARY KEY,
    spec_json TEXT NOT NULL,
    state TEXT NOT NULL DEFAULT 'queued',
    priority INTEGER NOT NULL DEFAULT 1,
    submitter TEXT NOT NULL DEFAULT 'anonymous',
    seq INTEGER NOT NULL,
    attempts INTEGER NOT NULL DEFAULT 0,
    requeues INTEGER NOT NULL DEFAULT 0,
    lease_owner TEXT,
    lease_expires REAL,
    submitted_at REAL,
    started_at REAL,
    finished_at REAL,
    result_json TEXT,
    failure_json TEXT
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state, priority, seq);
CREATE TABLE IF NOT EXISTS control (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS counters (
    name TEXT PRIMARY KEY,
    value INTEGER NOT NULL DEFAULT 0
);
"""


class UnknownJobError(KeyError):
    """No job with that id exists in the queue."""

    def __init__(self, job_id: str) -> None:
        super().__init__(job_id)
        self.job_id = job_id

    def __str__(self) -> str:
        return f"unknown job {self.job_id!r}"


class JobStateError(RuntimeError):
    """The requested transition is illegal from the job's current state."""


@dataclass(frozen=True)
class SubmitReceipt:
    """What a submitter learns: the job's identity and whether it was new."""

    job_id: str
    state: str
    deduplicated: bool

    def to_payload(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "state": self.state,
            "deduplicated": self.deduplicated,
        }


@dataclass(frozen=True)
class LeasedJob:
    """One unit of leased work handed to a worker."""

    job_id: str
    spec: JobSpec
    attempts: int
    lease_expires: float


class JobQueue:
    """The durable queue.  Safe for many threads and many processes.

    Thread safety inside one process comes from a lock around the shared
    connection; cross-process safety comes from SQLite itself (WAL +
    busy timeout + ``BEGIN IMMEDIATE`` transactions for every
    read-modify-write decision).
    """

    def __init__(
        self,
        path: str,
        policy: Optional[SchedulerPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.path = str(path)
        self.policy = policy or SchedulerPolicy()
        self._clock = clock
        self._lock = threading.RLock()
        self._connection = connect(self.path, check_same_thread=False)
        # Explicit transactions only: every mutate below brackets its
        # own BEGIN IMMEDIATE .. COMMIT so decisions and writes are one
        # atomic unit even under cross-process contention.
        self._connection.isolation_level = None
        with self._lock:
            self._connection.executescript(_SCHEMA)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _transaction(self):
        return _Transaction(self._connection, self._lock)

    def _bump(self, cursor, name: str, amount: int = 1) -> None:
        cursor.execute(
            "INSERT INTO counters VALUES (?, ?) "
            "ON CONFLICT(name) DO UPDATE SET value = value + ?",
            (name, amount, amount),
        )

    def _next_seq(self, cursor) -> int:
        self._bump(cursor, "seq")
        row = cursor.execute(
            "SELECT value FROM counters WHERE name = 'seq'"
        ).fetchone()
        return int(row[0])

    # ------------------------------------------------------------------
    # Submission (dedup + admission control)
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: JobSpec,
        priority: Optional[str] = None,
        submitter: str = "anonymous",
    ) -> SubmitReceipt:
        """Admit one job; deduplicates on the content-addressed id.

        Raises :class:`~repro.service.scheduler.QueueFull` on
        backpressure and :class:`QueueDraining` during shutdown --
        deduplicated submissions of known jobs bypass both, because they
        add no work.
        """
        policy = self.policy
        class_name = priority if priority is not None else policy.default_class
        priority_number = policy.priority_for(class_name)
        job_id = spec.job_id
        now = self._clock()
        with self._transaction() as cursor:
            row = cursor.execute(
                "SELECT state FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
            if row is not None and row[0] not in (FAILED, CANCELLED):
                self._bump(cursor, "jobs.deduplicated")
                return SubmitReceipt(job_id, row[0], deduplicated=True)
            if self._draining(cursor):
                raise QueueDraining(
                    "service is draining and admits no new jobs"
                )
            depth = cursor.execute(
                "SELECT COUNT(*) FROM jobs WHERE state = ?", (QUEUED,)
            ).fetchone()[0]
            pending = cursor.execute(
                "SELECT COUNT(*) FROM jobs WHERE submitter = ? "
                "AND state IN (?, ?, ?)",
                (submitter, QUEUED, LEASED, RUNNING),
            ).fetchone()[0]
            policy.admit(depth, pending, submitter)
            seq = self._next_seq(cursor)
            if row is None:
                cursor.execute(
                    "INSERT INTO jobs (job_id, spec_json, state, priority, "
                    "submitter, seq, submitted_at) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (
                        job_id,
                        spec.to_json(),
                        QUEUED,
                        priority_number,
                        submitter,
                        seq,
                        now,
                    ),
                )
            else:
                # Revive a failed/cancelled job under the new submission.
                cursor.execute(
                    "UPDATE jobs SET state = ?, priority = ?, submitter = ?, "
                    "seq = ?, attempts = 0, requeues = 0, lease_owner = NULL, "
                    "lease_expires = NULL, submitted_at = ?, started_at = NULL, "
                    "finished_at = NULL, result_json = NULL, "
                    "failure_json = NULL WHERE job_id = ?",
                    (QUEUED, priority_number, submitter, seq, now, job_id),
                )
            self._bump(cursor, "jobs.submitted")
            return SubmitReceipt(job_id, QUEUED, deduplicated=False)

    # ------------------------------------------------------------------
    # Leasing / heartbeats / expiry
    # ------------------------------------------------------------------
    def lease(self, worker_id: str) -> Optional[LeasedJob]:
        """Atomically claim the next job per the scheduling policy.

        Expired leases are swept first, so every polling worker doubles
        as the lease reaper -- no separate supervisor is required for
        liveness.  Returns None when nothing is runnable (or the queue
        is draining: draining stops *leasing*, not in-flight work).
        """
        now = self._clock()
        with self._transaction() as cursor:
            self._requeue_expired(cursor, now)
            if self._draining(cursor):
                return None
            row = cursor.execute(NEXT_JOB_SQL).fetchone()
            if row is None:
                return None
            job_id = row[0]
            expires = now + self.policy.lease_seconds
            cursor.execute(
                "UPDATE jobs SET state = ?, lease_owner = ?, "
                "lease_expires = ?, attempts = attempts + 1, "
                "started_at = COALESCE(started_at, ?) WHERE job_id = ?",
                (LEASED, worker_id, expires, now, job_id),
            )
            spec_json, attempts = cursor.execute(
                "SELECT spec_json, attempts FROM jobs WHERE job_id = ?",
                (job_id,),
            ).fetchone()
            self._bump(cursor, "jobs.leased")
            return LeasedJob(
                job_id, JobSpec.from_json(spec_json), attempts, expires
            )

    def mark_running(self, job_id: str, worker_id: str) -> bool:
        """Leased -> running (execution actually began)."""
        with self._transaction() as cursor:
            changed = cursor.execute(
                "UPDATE jobs SET state = ? WHERE job_id = ? "
                "AND lease_owner = ? AND state = ?",
                (RUNNING, job_id, worker_id, LEASED),
            ).rowcount
            return changed == 1

    def heartbeat(self, job_id: str, worker_id: str) -> bool:
        """Extend a live lease.  False means the lease was lost: the job
        expired and was requeued (or finished elsewhere), so the worker
        should abandon it -- its eventual ``complete`` would be rejected
        anyway."""
        now = self._clock()
        with self._transaction() as cursor:
            changed = cursor.execute(
                "UPDATE jobs SET lease_expires = ? WHERE job_id = ? "
                "AND lease_owner = ? AND state IN (?, ?)",
                (now + self.policy.lease_seconds, job_id, worker_id,
                 LEASED, RUNNING),
            ).rowcount
            return changed == 1

    def _requeue_expired(self, cursor, now: float) -> List[str]:
        rows = cursor.execute(
            "SELECT job_id, attempts FROM jobs "
            "WHERE state IN (?, ?) AND lease_expires < ?",
            (LEASED, RUNNING, now),
        ).fetchall()
        requeued: List[str] = []
        for job_id, attempts in rows:
            if attempts >= self.policy.max_attempts:
                failure = {
                    "category": "capability",
                    "error_type": "LeaseExpired",
                    "message": (
                        f"worker lease expired {attempts} time(s); "
                        "attempts exhausted"
                    ),
                }
                cursor.execute(
                    "UPDATE jobs SET state = ?, lease_owner = NULL, "
                    "lease_expires = NULL, finished_at = ?, "
                    "failure_json = ? WHERE job_id = ?",
                    (FAILED, now, json.dumps(failure, sort_keys=True),
                     job_id),
                )
                self._bump(cursor, "jobs.failed")
            else:
                cursor.execute(
                    "UPDATE jobs SET state = ?, lease_owner = NULL, "
                    "lease_expires = NULL, requeues = requeues + 1 "
                    "WHERE job_id = ?",
                    (QUEUED, job_id),
                )
                requeued.append(job_id)
                self._bump(cursor, "jobs.requeued")
        return requeued

    def requeue_expired(self) -> List[str]:
        """Sweep expired leases now; returns the requeued job ids."""
        now = self._clock()
        with self._transaction() as cursor:
            return self._requeue_expired(cursor, now)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def complete(
        self, job_id: str, worker_id: str, result: Dict[str, Any]
    ) -> bool:
        """Store a finished job's canonical result (ownership-checked).

        Returns False for a stale worker whose lease was stolen: the
        authoritative execution's result wins and the duplicate is
        dropped, preserving exactly-once *results* on top of
        at-least-once *execution*.
        """
        text = canonical_result_text(result)
        now = self._clock()
        with self._transaction() as cursor:
            completed = cursor.execute(
                "UPDATE jobs SET state = ?, result_json = ?, "
                "finished_at = ?, lease_owner = NULL, lease_expires = NULL "
                "WHERE job_id = ? AND lease_owner = ? AND state IN (?, ?)",
                (DONE, text, now, job_id, worker_id, LEASED, RUNNING),
            ).rowcount == 1
            if completed:
                self._bump(cursor, "jobs.completed")
            else:
                self._bump(cursor, "jobs.stale_results_dropped")
            return completed

    def fail(
        self,
        job_id: str,
        worker_id: str,
        failure: Dict[str, Any],
        retryable: bool = False,
    ) -> Optional[str]:
        """Record an execution failure; transient ones may retry.

        Returns the job's new state (``queued`` for a retry, ``failed``
        terminally) or None when the worker no longer owned the job.
        """
        now = self._clock()
        with self._transaction() as cursor:
            row = cursor.execute(
                "SELECT attempts FROM jobs WHERE job_id = ? "
                "AND lease_owner = ? AND state IN (?, ?)",
                (job_id, worker_id, LEASED, RUNNING),
            ).fetchone()
            if row is None:
                return None
            attempts = int(row[0])
            if retryable and attempts < self.policy.max_attempts:
                cursor.execute(
                    "UPDATE jobs SET state = ?, lease_owner = NULL, "
                    "lease_expires = NULL, requeues = requeues + 1 "
                    "WHERE job_id = ?",
                    (QUEUED, job_id),
                )
                self._bump(cursor, "jobs.requeued")
                return QUEUED
            cursor.execute(
                "UPDATE jobs SET state = ?, failure_json = ?, "
                "finished_at = ?, lease_owner = NULL, lease_expires = NULL "
                "WHERE job_id = ?",
                (FAILED, json.dumps(failure, sort_keys=True), now, job_id),
            )
            self._bump(cursor, "jobs.failed")
            return FAILED

    def cancel(self, job_id: str) -> str:
        """Cancel a queued job.  Leased/running/finished jobs refuse
        (their fate is already decided); the caller maps the refusal to
        HTTP 409."""
        with self._transaction() as cursor:
            row = cursor.execute(
                "SELECT state FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
            if row is None:
                raise UnknownJobError(job_id)
            state = row[0]
            if state != QUEUED:
                raise JobStateError(
                    f"job {job_id} is {state}; only queued jobs cancel"
                )
            now = self._clock()
            cursor.execute(
                "UPDATE jobs SET state = ?, finished_at = ? WHERE job_id = ?",
                (CANCELLED, now, job_id),
            )
            self._bump(cursor, "jobs.cancelled")
            return CANCELLED

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Dict[str, Any]:
        """One job's public record (no result body; see :meth:`result`)."""
        with self._lock:
            row = self._connection.execute(
                "SELECT spec_json, state, priority, submitter, attempts, "
                "requeues, submitted_at, started_at, finished_at, "
                "failure_json FROM jobs WHERE job_id = ?",
                (job_id,),
            ).fetchone()
        if row is None:
            raise UnknownJobError(job_id)
        (spec_json, state, priority, submitter, attempts, requeues,
         submitted_at, started_at, finished_at, failure_json) = row
        record: Dict[str, Any] = {
            "job_id": job_id,
            "spec": json.loads(spec_json),
            "state": state,
            "priority": self.policy.class_name(priority),
            "submitter": submitter,
            "attempts": attempts,
            "requeues": requeues,
        }
        if submitted_at is not None and finished_at is not None:
            record["latency_seconds"] = finished_at - submitted_at
        if failure_json is not None:
            record["failure"] = json.loads(failure_json)
        return record

    def result_text(self, job_id: str) -> Optional[str]:
        """The stored canonical result JSON, verbatim, or None."""
        with self._lock:
            row = self._connection.execute(
                "SELECT state, result_json FROM jobs WHERE job_id = ?",
                (job_id,),
            ).fetchone()
        if row is None:
            raise UnknownJobError(job_id)
        return row[1]

    def result(self, job_id: str) -> Optional[Dict[str, Any]]:
        text = self.result_text(job_id)
        return None if text is None else json.loads(text)

    def list_jobs(self, limit: int = 200) -> List[Dict[str, Any]]:
        with self._lock:
            rows = self._connection.execute(
                "SELECT job_id FROM jobs ORDER BY seq DESC LIMIT ?",
                (int(limit),),
            ).fetchall()
        return [self.get(job_id) for (job_id,) in rows]

    def stats(self) -> Dict[str, Any]:
        """Queue-depth and counter snapshot for the stats endpoint."""
        with self._lock:
            states = dict(
                self._connection.execute(
                    "SELECT state, COUNT(*) FROM jobs GROUP BY state"
                ).fetchall()
            )
            counters = dict(
                self._connection.execute(
                    "SELECT name, value FROM counters WHERE name != 'seq'"
                ).fetchall()
            )
            in_flight = dict(
                self._connection.execute(
                    "SELECT submitter, COUNT(*) FROM jobs "
                    "WHERE state IN (?, ?) GROUP BY submitter",
                    (LEASED, RUNNING),
                ).fetchall()
            )
            draining = self._draining(self._connection)
        return {
            "states": {state: states.get(state, 0) for state in STATES},
            "depth": states.get(QUEUED, 0),
            "max_depth": self.policy.max_depth,
            "in_flight_by_submitter": in_flight,
            "counters": counters,
            "draining": draining,
        }

    # ------------------------------------------------------------------
    # Drain control
    # ------------------------------------------------------------------
    def _draining(self, cursor) -> bool:
        row = cursor.execute(
            "SELECT value FROM control WHERE key = 'draining'"
        ).fetchone()
        return row is not None and row[0] == "1"

    def draining(self) -> bool:
        with self._lock:
            return self._draining(self._connection)

    def set_draining(self, draining: bool = True) -> None:
        """Flip the drain flag (persisted, visible to worker processes)."""
        with self._transaction() as cursor:
            cursor.execute(
                "INSERT INTO control VALUES ('draining', ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                ("1" if draining else "0",),
            )

    def in_flight(self) -> int:
        with self._lock:
            return int(
                self._connection.execute(
                    "SELECT COUNT(*) FROM jobs WHERE state IN (?, ?)",
                    (LEASED, RUNNING),
                ).fetchone()[0]
            )


class _Transaction:
    """``BEGIN IMMEDIATE`` bracket: one atomic read-modify-write unit."""

    def __init__(self, connection, lock: threading.RLock) -> None:
        self._connection = connection
        self._lock = lock

    def __enter__(self):
        self._lock.acquire()
        began = False
        try:
            self._connection.execute("BEGIN IMMEDIATE")
            began = True
        finally:
            if not began:
                self._lock.release()
        return self._connection

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if exc_type is None:
                self._connection.execute("COMMIT")
            else:
                self._connection.execute("ROLLBACK")
        finally:
            self._lock.release()
