"""Scheduling policy: priority classes, fair share, admission control.

The queue stores jobs; this module decides *which* queued job a worker
leases next and *whether* a new submission is admitted at all.  Cleaning
evaluation is an iterative workload -- many users submitting many small
variant configurations -- so the scheduler optimizes for fairness under
contention rather than raw FIFO:

- **Priority classes** (``interactive`` < ``batch`` < ``bulk``): a lower
  class number always wins.  Interactive probes jump the bulk sweeps.
- **Per-submitter fair share**: within a priority class, the next lease
  goes to the submitter with the fewest jobs currently in flight
  (leased or running) -- max-min fairness on in-flight work, so one user
  enqueueing 500 configs cannot starve a user submitting one.
- **Admission control**: the queue depth is bounded.  Past
  ``max_depth`` (or a per-submitter pending cap) a submission is
  rejected with the typed, retryable :class:`QueueFull` instead of
  accepting unbounded work -- the API maps it to HTTP 429 with a
  ``Retry-After`` hint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

#: Built-in priority classes (name -> class number; lower runs first).
DEFAULT_PRIORITY_CLASSES: Mapping[str, int] = {
    "interactive": 0,
    "batch": 1,
    "bulk": 2,
}


class QueueFull(RuntimeError):
    """Typed backpressure: the queue refuses new work *for now*.

    Carries a ``retry_after_seconds`` hint so clients back off instead
    of hammering the submission endpoint.  This is a ``transient``
    condition in the failure taxonomy -- the same job submitted later
    will be accepted.
    """

    def __init__(self, message: str, retry_after_seconds: float = 1.0):
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


class QueueDraining(RuntimeError):
    """The service is shutting down and no longer admits new jobs."""


@dataclass(frozen=True)
class SchedulerPolicy:
    """Tunable knobs for one service's queueing behaviour."""

    priority_classes: Mapping[str, int] = field(
        default_factory=lambda: dict(DEFAULT_PRIORITY_CLASSES)
    )
    default_class: str = "batch"
    #: Queued (not yet leased) jobs admitted before backpressure.
    max_depth: int = 256
    #: Queued + in-flight jobs any single submitter may hold.
    max_pending_per_submitter: int = 64
    #: Lease duration; a worker silent for this long forfeits its job.
    lease_seconds: float = 30.0
    #: Executions (initial + retries after lease expiry / transient
    #: failure) before a job is declared failed.
    max_attempts: int = 3
    retry_after_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if self.max_pending_per_submitter < 1:
            raise ValueError("max_pending_per_submitter must be >= 1")
        if self.lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.default_class not in self.priority_classes:
            raise ValueError(
                f"default_class {self.default_class!r} is not a "
                f"priority class {sorted(self.priority_classes)}"
            )

    def priority_for(self, name: str) -> int:
        """Class number for a priority name; ValueError when unknown."""
        try:
            return self.priority_classes[name]
        except KeyError:
            raise ValueError(
                f"unknown priority class {name!r}; "
                f"choose from {sorted(self.priority_classes)}"
            ) from None

    def class_name(self, priority: int) -> str:
        for name, number in self.priority_classes.items():
            if number == priority:
                return name
        return str(priority)

    # ------------------------------------------------------------------
    # Decisions (pure functions of queue snapshots, easy to unit-test)
    # ------------------------------------------------------------------
    def admit(
        self, queued_depth: int, submitter_pending: int, submitter: str
    ) -> None:
        """Admission check for one new (non-deduplicated) submission."""
        if queued_depth >= self.max_depth:
            raise QueueFull(
                f"queue depth {queued_depth} at capacity "
                f"({self.max_depth}); retry later",
                retry_after_seconds=self.retry_after_seconds,
            )
        if submitter_pending >= self.max_pending_per_submitter:
            raise QueueFull(
                f"submitter {submitter!r} already has "
                f"{submitter_pending} pending jobs "
                f"(cap {self.max_pending_per_submitter}); retry later",
                retry_after_seconds=self.retry_after_seconds,
            )


#: The fair-share lease query.  Among queued jobs: lowest priority class
#: first; within a class, the submitter with the fewest in-flight jobs;
#: submission order breaks the remaining ties deterministically.
NEXT_JOB_SQL = """
SELECT job_id FROM jobs
WHERE state = 'queued'
ORDER BY
    priority ASC,
    (
        SELECT COUNT(*) FROM jobs active
        WHERE active.submitter = jobs.submitter
          AND active.state IN ('leased', 'running')
    ) ASC,
    seq ASC
LIMIT 1
"""


def fair_share_counts(
    rows: Tuple[Tuple[str, str], ...]
) -> Dict[str, int]:
    """In-flight job count per submitter from (submitter, state) rows."""
    counts: Dict[str, int] = {}
    for submitter, state in rows:
        if state in ("leased", "running"):
            counts[submitter] = counts.get(submitter, 0) + 1
    return counts
