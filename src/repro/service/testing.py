"""Execution doubles for service tests and benchmarks.

Worker processes resolve their execution function from a
``module:attribute`` reference, so doubles must live in an importable
module -- this one.  Configuration crosses the fork boundary through
environment variables (set them before ``WorkerPool.start``; forked
children inherit them):

- ``REPRO_SERVICE_TEST_DIR``: directory for attempt markers and
  kill-coordination files;
- ``REPRO_SERVICE_SLEEP_SECONDS``: how long :func:`sleepy_execute`
  pretends to work (default 0.05).

Every double shares :func:`repro.service.jobs.execute_job_payload`'s
signature: ``(spec_payload, *, store_path=None, telemetry=None) ->
result payload``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from repro.resilience.failures import TransientError
from repro.service.jobs import JOB_SCHEMA_VERSION, JobSpec, execute_job

TEST_DIR_ENV = "REPRO_SERVICE_TEST_DIR"
SLEEP_ENV = "REPRO_SERVICE_SLEEP_SECONDS"


class StepClock:
    """Deterministic clock (see ``tests/test_chaos.StepClock``): integer
    tick counts times a power-of-two tick, so per-unit elapsed times are
    exact call-count multiples -- independent of which process runs the
    unit or what ran before it."""

    def __init__(self, tick: float = 2.0 ** -10):
        self.ticks = 0
        self.tick = tick

    def __call__(self) -> float:
        self.ticks += 1
        return self.ticks * self.tick


def _no_sleep(seconds: float) -> None:
    return None


def _test_dir() -> Optional[Path]:
    value = os.environ.get(TEST_DIR_ENV)
    return Path(value) if value else None


def _record_attempt(directory: Path, job_id: str) -> int:
    """Append one attempt marker; returns this execution's ordinal.

    Attempts of one job are serialized by the lease, so the
    append-then-count is race-free for the chaos scenarios that use it.
    """
    marker = directory / f"{job_id}.attempts"
    with open(marker, "a", encoding="utf-8") as handle:
        handle.write("x")
    return marker.read_text(encoding="utf-8").count("x")


def attempt_count(directory: Path, job_id: str) -> int:
    marker = Path(directory) / f"{job_id}.attempts"
    if not marker.exists():
        return 0
    return marker.read_text(encoding="utf-8").count("x")


# ----------------------------------------------------------------------
# Doubles
# ----------------------------------------------------------------------
def deterministic_execute(
    spec_payload: Mapping[str, Any],
    store_path: Optional[str] = None,
    telemetry: Any = None,
) -> Dict[str, Any]:
    """The real execution path on a :class:`StepClock`.

    With deterministic per-unit timings, the *checkpoint store* contents
    (not just the stripped result) are byte-comparable between an
    interrupted-and-resumed run and an uninterrupted one.
    """
    return execute_job(
        JobSpec.from_payload(spec_payload),
        store_path=store_path,
        telemetry=telemetry,
        clock=StepClock(),
        sleep=_no_sleep,
    )


def chaos_execute(
    spec_payload: Mapping[str, Any],
    store_path: Optional[str] = None,
    telemetry: Any = None,
) -> Dict[str, Any]:
    """Deterministic execution that parks after its *first* attempt.

    The first execution of each job runs to completion (checkpoints
    committed), drops a ``<job_id>.ready`` file to tell the test this
    worker is now killable, and hangs without ever reporting back -- the
    SIGKILL window.  The lease expires, the queue requeues the job, and
    the retry resumes from the checkpoint store.
    """
    spec = JobSpec.from_payload(spec_payload)
    directory = _test_dir()
    attempt = (
        _record_attempt(directory, spec.job_id)
        if directory is not None
        else 2
    )
    result = deterministic_execute(
        spec_payload, store_path=store_path, telemetry=telemetry
    )
    if attempt == 1:
        (directory / f"{spec.job_id}.ready").touch()
        time.sleep(3600.0)
    return result


def sleepy_execute(
    spec_payload: Mapping[str, Any],
    store_path: Optional[str] = None,
    telemetry: Any = None,
) -> Dict[str, Any]:
    """Fixed-cost fake work; the throughput benchmark's payload."""
    spec = JobSpec.from_payload(spec_payload)
    time.sleep(float(os.environ.get(SLEEP_ENV, "0.05")))
    return {
        "schema": JOB_SCHEMA_VERSION,
        "job_id": spec.job_id,
        "spec": spec.to_payload(),
        "kind": "sleepy",
    }


def hanging_execute(
    spec_payload: Mapping[str, Any],
    store_path: Optional[str] = None,
    telemetry: Any = None,
) -> Dict[str, Any]:
    """Never returns; pure SIGKILL fodder for lease-expiry tests."""
    spec = JobSpec.from_payload(spec_payload)
    directory = _test_dir()
    if directory is not None:
        _record_attempt(directory, spec.job_id)
        (directory / f"{spec.job_id}.ready").touch()
    time.sleep(3600.0)
    raise AssertionError("unreachable")


def failing_execute(
    spec_payload: Mapping[str, Any],
    store_path: Optional[str] = None,
    telemetry: Any = None,
) -> Dict[str, Any]:
    """Deterministic non-retryable (data-category) failure."""
    raise ValueError("this job always fails (testing double)")


def flaky_execute(
    spec_payload: Mapping[str, Any],
    store_path: Optional[str] = None,
    telemetry: Any = None,
) -> Dict[str, Any]:
    """Transient failure on each job's first attempt, success after --
    exercises the queue's retry-on-transient path end to end."""
    spec = JobSpec.from_payload(spec_payload)
    directory = _test_dir()
    if directory is None:
        raise RuntimeError(f"flaky_execute needs {TEST_DIR_ENV} set")
    if _record_attempt(directory, spec.job_id) == 1:
        raise TransientError("first attempt always flakes (testing double)")
    return sleepy_execute(
        spec_payload, store_path=store_path, telemetry=telemetry
    )
