"""Service workers: lease jobs, execute them, stream observability.

A :class:`ServiceWorker` is the single-job loop (lease -> running ->
execute through the existing engines -> complete/fail) plus a heartbeat
thread that keeps the lease alive during long executions.  Execution
failures go through the PR 1 taxonomy: ``transient`` failures requeue
the job (bounded by the policy's ``max_attempts``), everything else
fails it with the categorized record attached.

:class:`WorkerPool` runs N workers as real OS processes
(``multiprocessing``), which is what makes the chaos guarantees honest:
a SIGKILLed worker takes nothing with it but its lease, and SIGTERM is
the graceful-drain signal -- stop leasing, finish the in-flight job,
exit 0.

Each worker process streams spans and counters into its own shard of
the PR 3 observability ledger (``<events>.<worker_id>.jsonl`` -- the ledger
is single-writer by design, so concurrent workers must not share a
file), with every span and event tagged with the job id it served.
"""

from __future__ import annotations

import importlib
import os
import signal
import sqlite3
import threading
import time
from typing import Any, Callable, Dict, List, Optional

import multiprocessing

from repro.observability import RunLedger, Telemetry
from repro.observability.telemetry import telemetry_scope
from repro.repository.store import is_busy_error
from repro.resilience.failures import TRANSIENT, FailureRecord
from repro.service.queue import JobQueue, LeasedJob
from repro.service.scheduler import SchedulerPolicy

#: Default execution function, as an importable reference so freshly
#: spawned worker processes (and test/benchmark doubles) resolve it by
#: name -- the same install-by-spec idiom the artifact cache uses.
DEFAULT_EXECUTE_REF = "repro.service.jobs:execute_job_payload"

#: Span/trace category for one job execution.
JOB = "job"

JOB_STARTED = "job_started"
JOB_FINISHED = "job_finished"


def resolve_execute(ref: str) -> Callable[..., Dict[str, Any]]:
    """Resolve a ``module:attribute`` execution reference."""
    module_name, _, attribute = ref.partition(":")
    if not module_name or not attribute:
        raise ValueError(
            f"execute ref must look like 'module:attribute', got {ref!r}"
        )
    module = importlib.import_module(module_name)
    return getattr(module, attribute)


class ServiceWorker:
    """One worker identity: leases and executes jobs from a queue."""

    def __init__(
        self,
        queue: JobQueue,
        worker_id: str,
        execute: Optional[Callable[..., Dict[str, Any]]] = None,
        store_path: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
        heartbeat_interval: Optional[float] = None,
        job_workers: int = 1,
        start_method: Optional[str] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        self.queue = queue
        self.worker_id = worker_id
        self.execute = execute or resolve_execute(DEFAULT_EXECUTE_REF)
        self.store_path = store_path
        self.telemetry = telemetry
        self.job_workers = job_workers
        self.start_method = start_method
        self.chunk_size = chunk_size
        lease = queue.policy.lease_seconds
        self.heartbeat_interval = (
            heartbeat_interval if heartbeat_interval is not None
            else max(lease / 4.0, 0.05)
        )
        self.jobs_done = 0

    # ------------------------------------------------------------------
    def run_once(self) -> bool:
        """Lease and fully process one job; False when queue was idle."""
        job = self.queue.lease(self.worker_id)
        if job is None:
            return False
        self.queue.mark_running(job.job_id, self.worker_id)
        stop_heartbeat = threading.Event()
        beater = threading.Thread(
            target=self._heartbeat_loop,
            args=(job.job_id, stop_heartbeat),
            daemon=True,
        )
        beater.start()
        try:
            self._process(job)
        finally:
            stop_heartbeat.set()
            beater.join()
        return True

    def _heartbeat_loop(self, job_id: str, stop: threading.Event) -> None:
        while not stop.wait(self.heartbeat_interval):
            try:
                alive = self.queue.heartbeat(job_id, self.worker_id)
            except sqlite3.OperationalError as exc:
                if not is_busy_error(exc):
                    raise
                # Writer contention: a missed beat is recoverable as
                # long as the next one lands before the lease lapses.
                continue
            if not alive:
                # Lease lost (expired and requeued elsewhere); the
                # ownership check on complete() will drop our result.
                return

    def _process(self, job: LeasedJob) -> None:
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.event(
                JOB_STARTED,
                job_id=job.job_id,
                worker=self.worker_id,
                attempts=job.attempts,
                kind=job.spec.kind,
                dataset=job.spec.dataset,
            )
        status = "done"
        try:
            if telemetry is not None:
                with telemetry_scope(telemetry):
                    with telemetry.span(
                        f"job:{job.job_id}", JOB,
                        job_id=job.job_id, kind=job.spec.kind,
                    ):
                        result = self._execute(job)
            else:
                result = self._execute(job)
        except Exception as exc:  # the worker's designated failure boundary
            record = FailureRecord.from_exception(
                exc,
                method=job.spec.kind,
                stage="service",
                job_id=job.job_id,
                dataset=job.spec.dataset,
            )
            retryable = record.category == TRANSIENT
            state = self.queue.fail(
                job.job_id, self.worker_id, record.to_payload(),
                retryable=retryable,
            )
            status = state or "stale"
            if telemetry is not None:
                telemetry.record_failure(record)
                telemetry.count("service.jobs.failed_attempts")
        else:
            accepted = self.queue.complete(
                job.job_id, self.worker_id, result
            )
            status = "done" if accepted else "stale"
            self.jobs_done += 1
            if telemetry is not None:
                telemetry.count("service.jobs.executed")
                if not accepted:
                    telemetry.count("service.jobs.stale_results")
        if telemetry is not None:
            telemetry.event(
                JOB_FINISHED,
                job_id=job.job_id,
                worker=self.worker_id,
                status=status,
            )

    def _execute(self, job: LeasedJob) -> Dict[str, Any]:
        kwargs: Dict[str, Any] = {
            "store_path": self.store_path,
            "telemetry": self.telemetry,
        }
        if self.job_workers > 1:
            # Shard the job's own unit grid across a nested process
            # pool (shared-memory data plane).  Passed only when
            # configured so test doubles keep their narrower signature.
            from repro.parallel import make_executor

            kwargs["executor"] = make_executor(
                self.job_workers,
                start_method=self.start_method,
                chunk_size=self.chunk_size,
            )
        return self.execute(job.spec.to_payload(), **kwargs)

    def run_forever(
        self,
        stop: threading.Event,
        poll_seconds: float = 0.1,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        """Serve until told to stop or the queue starts draining.

        Idle polls back off by ``poll_seconds``; a busy worker loops
        immediately.  In-flight work always finishes -- ``stop`` and the
        drain flag are only consulted *between* jobs.

        SQLite busy errors (the shared queue's writer lock outlasting
        the busy timeout under contention) are treated as an idle tick,
        not a worker death: the lease expiry path cleans up whatever
        the interrupted iteration held.
        """
        while not stop.is_set():
            if self.queue.draining():
                return
            try:
                idle = not self.run_once()
            except sqlite3.OperationalError as exc:
                if not is_busy_error(exc):
                    raise
                idle = True
            if idle:
                sleep(poll_seconds)


# ----------------------------------------------------------------------
# Process pool
# ----------------------------------------------------------------------
def worker_main(
    queue_path: str,
    worker_id: str,
    policy: SchedulerPolicy,
    execute_ref: str = DEFAULT_EXECUTE_REF,
    store_path: Optional[str] = None,
    events_path: Optional[str] = None,
    poll_seconds: float = 0.1,
    job_workers: int = 1,
    start_method: Optional[str] = None,
    chunk_size: Optional[int] = None,
) -> None:
    """Entry point of one worker process.

    SIGTERM is the drain signal: it sets the stop event, so the worker
    finishes the job it holds (if any) and exits cleanly instead of
    abandoning a lease.  A SIGKILLed worker is the chaos case the lease
    expiry path exists for.
    """
    stop = threading.Event()

    def _drain(signum, frame):  # noqa: ARG001 - signal handler shape
        stop.set()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    telemetry: Optional[Telemetry] = None
    ledger: Optional[RunLedger] = None
    if events_path is not None:
        ledger = RunLedger(f"{events_path}.{worker_id}.jsonl")
        telemetry = Telemetry(ledger=ledger)
    queue = JobQueue(queue_path, policy=policy)
    worker = ServiceWorker(
        queue,
        worker_id,
        execute=resolve_execute(execute_ref),
        store_path=store_path,
        telemetry=telemetry,
        job_workers=job_workers,
        start_method=start_method,
        chunk_size=chunk_size,
    )
    try:
        worker.run_forever(stop, poll_seconds=poll_seconds)
    finally:
        if telemetry is not None:
            telemetry.flush_to_ledger()
        if ledger is not None:
            ledger.close()
        queue.close()


class WorkerPool:
    """N worker processes over one queue database.

    Processes are started with the ``fork`` start method where
    available (workers inherit the warm interpreter); the pool parent
    must therefore hold **no** open queue connection when ``start`` runs
    -- :class:`~repro.service.daemon.BenchService` opens its own
    connection only after the fork.
    """

    def __init__(
        self,
        queue_path: str,
        n_workers: int,
        policy: Optional[SchedulerPolicy] = None,
        execute_ref: str = DEFAULT_EXECUTE_REF,
        store_path: Optional[str] = None,
        events_path: Optional[str] = None,
        poll_seconds: float = 0.1,
        name_prefix: str = "worker",
        job_workers: int = 1,
        start_method: Optional[str] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if job_workers < 1:
            raise ValueError("job_workers must be >= 1")
        self.queue_path = str(queue_path)
        self.n_workers = n_workers
        self.policy = policy or SchedulerPolicy()
        self.execute_ref = execute_ref
        self.store_path = store_path
        self.events_path = events_path
        self.poll_seconds = poll_seconds
        self.name_prefix = name_prefix
        self.job_workers = job_workers
        self.start_method = start_method
        self.chunk_size = chunk_size
        self._processes: List[multiprocessing.process.BaseProcess] = []

    def start(self) -> None:
        if self._processes:
            raise RuntimeError("pool already started")
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # platforms without fork
            context = multiprocessing.get_context()
        for index in range(self.n_workers):
            worker_id = f"{self.name_prefix}-{index}"
            process = context.Process(
                target=worker_main,
                args=(self.queue_path, worker_id, self.policy),
                kwargs={
                    "execute_ref": self.execute_ref,
                    "store_path": self.store_path,
                    "events_path": self.events_path,
                    "poll_seconds": self.poll_seconds,
                    "job_workers": self.job_workers,
                    "start_method": self.start_method,
                    "chunk_size": self.chunk_size,
                },
                name=worker_id,
                # Daemonic processes may not have children: a worker
                # that shards jobs across its own pool must be a
                # regular process (stop()/join() still reap it).
                daemon=self.job_workers <= 1,
            )
            process.start()
            self._processes.append(process)

    @property
    def processes(self) -> List[multiprocessing.process.BaseProcess]:
        return list(self._processes)

    def alive_count(self) -> int:
        return sum(1 for p in self._processes if p.is_alive())

    def kill(self, index: int) -> int:
        """SIGKILL one worker (chaos injection); returns its pid."""
        process = self._processes[index]
        pid = process.pid
        os.kill(pid, signal.SIGKILL)
        process.join(timeout=5.0)
        return pid

    def stop(self) -> None:
        """SIGTERM every live worker (graceful drain)."""
        for process in self._processes:
            if process.is_alive():
                process.terminate()

    def join(self, timeout: float = 30.0) -> bool:
        """Wait for workers to exit; True when all did."""
        deadline = time.monotonic() + timeout
        for process in self._processes:
            remaining = max(0.0, deadline - time.monotonic())
            process.join(timeout=remaining)
        alive = self.alive_count()
        for process in self._processes:
            if not process.is_alive():
                process.close()
        self._processes = [p for p in self._processes if _is_open(p)]
        return alive == 0


def _is_open(process) -> bool:
    try:
        process.is_alive()
    except ValueError:  # closed handle
        return False
    return True
