"""Hyperparameter optimisation (the paper uses Optuna; we provide an
equivalent informed-search implementation).

:class:`~repro.tuning.search.Study` runs trials over a declared
:class:`~repro.tuning.search.SearchSpace` using either pure random search or
a TPE-style adaptive sampler that focuses new samples near historically good
configurations -- the same Bayesian-flavoured informed search role Optuna
plays in REIN.
"""

from repro.tuning.search import (
    Categorical,
    Float,
    Integer,
    SearchSpace,
    Study,
    tune_estimator,
)

__all__ = [
    "Categorical",
    "Float",
    "Integer",
    "SearchSpace",
    "Study",
    "tune_estimator",
]
