"""Search spaces and samplers for hyperparameter tuning.

The TPE-style sampler partitions past trials into "good" and "bad" by score
quantile, models each group per-dimension, and proposes candidates that
maximize the good/bad likelihood ratio -- the same idea behind Optuna's
default sampler, reimplemented on numpy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


class Distribution:
    """Base class for one searchable hyperparameter dimension."""

    def sample(self, rng: np.random.Generator) -> Any:
        raise NotImplementedError

    def sample_near(self, value: Any, rng: np.random.Generator) -> Any:
        """Sample in the neighbourhood of a known-good value."""
        raise NotImplementedError


@dataclass(frozen=True)
class Float(Distribution):
    """Uniform (or log-uniform) float in [low, high]."""

    low: float
    high: float
    log: bool = False

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise ValueError("low must be < high")
        if self.log and self.low <= 0:
            raise ValueError("log-scale range must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        if self.log:
            return float(
                np.exp(rng.uniform(np.log(self.low), np.log(self.high)))
            )
        return float(rng.uniform(self.low, self.high))

    def sample_near(self, value: float, rng: np.random.Generator) -> float:
        if self.log:
            log_span = np.log(self.high) - np.log(self.low)
            proposal = np.exp(rng.normal(np.log(value), 0.2 * log_span))
        else:
            proposal = rng.normal(value, 0.2 * (self.high - self.low))
        return float(np.clip(proposal, self.low, self.high))


@dataclass(frozen=True)
class Integer(Distribution):
    """Uniform integer in [low, high] inclusive."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError("low must be <= high")

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def sample_near(self, value: int, rng: np.random.Generator) -> int:
        span = max(1, int(0.2 * (self.high - self.low)))
        proposal = int(round(rng.normal(value, span)))
        return int(np.clip(proposal, self.low, self.high))


@dataclass(frozen=True)
class Categorical(Distribution):
    """Uniform choice over fixed options."""

    options: Tuple[Any, ...]

    def __init__(self, options: Sequence[Any]) -> None:
        if not options:
            raise ValueError("options must be non-empty")
        object.__setattr__(self, "options", tuple(options))

    def sample(self, rng: np.random.Generator) -> Any:
        return self.options[int(rng.integers(len(self.options)))]

    def sample_near(self, value: Any, rng: np.random.Generator) -> Any:
        # Exploit the known-good option 70% of the time, explore otherwise.
        if rng.uniform() < 0.7:
            return value
        return self.sample(rng)


class SearchSpace:
    """A named set of hyperparameter dimensions."""

    def __init__(self, dimensions: Dict[str, Distribution]) -> None:
        if not dimensions:
            raise ValueError("search space must have at least one dimension")
        self.dimensions = dict(dimensions)

    def sample(self, rng: np.random.Generator) -> Dict[str, Any]:
        return {name: dim.sample(rng) for name, dim in self.dimensions.items()}

    def sample_near(
        self, anchor: Dict[str, Any], rng: np.random.Generator
    ) -> Dict[str, Any]:
        return {
            name: dim.sample_near(anchor[name], rng)
            for name, dim in self.dimensions.items()
        }


@dataclass
class Trial:
    params: Dict[str, Any]
    score: float


@dataclass
class Study:
    """Maximizes an objective over a search space.

    Args:
        space: the dimensions to search.
        sampler: ``"random"`` or ``"tpe"``.  TPE draws its first
            ``n_startup`` trials at random, then proposes candidates near
            anchors drawn from the top-gamma quantile of past trials,
            keeping the candidate that is farthest (per-dimension) from
            the bad group -- a lightweight likelihood-ratio argmax.
        seed: RNG seed.
    """

    space: SearchSpace
    sampler: str = "tpe"
    n_startup: int = 5
    gamma: float = 0.3
    n_candidates: int = 10
    seed: int = 0
    trials: List[Trial] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.sampler not in ("random", "tpe"):
            raise ValueError("sampler must be 'random' or 'tpe'")
        self._rng = np.random.default_rng(self.seed)

    def ask(self) -> Dict[str, Any]:
        """Propose the next parameter set to evaluate."""
        if self.sampler == "random" or len(self.trials) < self.n_startup:
            return self.space.sample(self._rng)
        ranked = sorted(self.trials, key=lambda t: t.score, reverse=True)
        n_good = max(1, int(math.ceil(self.gamma * len(ranked))))
        good = ranked[:n_good]
        anchor = good[int(self._rng.integers(len(good)))].params
        candidates = [
            self.space.sample_near(anchor, self._rng)
            for _ in range(self.n_candidates)
        ]
        # Prefer the candidate farthest from the bad group's centroids in
        # each numeric dimension (a cheap l(x)/g(x) surrogate).
        bad = ranked[n_good:]
        if not bad:
            return candidates[0]
        scores = [self._novelty(c, bad) for c in candidates]
        return candidates[int(np.argmax(scores))]

    def _novelty(self, params: Dict[str, Any], bad: List[Trial]) -> float:
        total = 0.0
        for name, dim in self.space.dimensions.items():
            if isinstance(dim, (Float, Integer)):
                span = float(dim.high - dim.low) or 1.0
                bad_values = np.array(
                    [float(t.params[name]) for t in bad], dtype=np.float64
                )
                total += float(
                    np.min(np.abs(bad_values - float(params[name]))) / span
                )
            else:
                bad_share = np.mean(
                    [t.params[name] == params[name] for t in bad]
                )
                total += 1.0 - float(bad_share)
        return total

    def tell(self, params: Dict[str, Any], score: float) -> None:
        """Record the result of a trial."""
        self.trials.append(Trial(dict(params), float(score)))

    def optimize(
        self,
        objective: Callable[[Dict[str, Any]], float],
        n_trials: int,
    ) -> Trial:
        """Run *n_trials* ask/tell rounds; return the best trial."""
        if n_trials < 1:
            raise ValueError("n_trials must be >= 1")
        for _ in range(n_trials):
            params = self.ask()
            self.tell(params, objective(params))
        return self.best_trial

    @property
    def best_trial(self) -> Trial:
        if not self.trials:
            raise RuntimeError("study has no completed trials")
        return max(self.trials, key=lambda t: t.score)


def tune_estimator(
    factory: Callable[..., Any],
    space: SearchSpace,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_valid: np.ndarray,
    y_valid: np.ndarray,
    n_trials: int = 10,
    seed: int = 0,
) -> Tuple[Any, Trial]:
    """Tune an estimator factory against a holdout split.

    Returns ``(fitted_best_estimator, best_trial)``.  The estimator's own
    ``score`` (accuracy or R^2) is the objective, matching how REIN tunes
    each model with Optuna before the scenario runs.
    """

    def objective(params: Dict[str, Any]) -> float:
        model = factory(**params)
        try:
            model.fit(x_train, y_train)
            return model.score(x_valid, y_valid)
        except (ValueError, np.linalg.LinAlgError):
            return -np.inf

    study = Study(space, seed=seed)
    best = study.optimize(objective, n_trials)
    winner = factory(**best.params)
    winner.fit(x_train, y_train)
    return winner, best
