"""Broad integration net: every Table 4 analogue flows through the
controller and at least one applicable detector finds real errors."""

import pytest

from repro.benchmark import BenchmarkController, run_detection_suite
from repro.datagen import DATASET_NAMES, generate
from repro.detectors import MinKDetector


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_controller_produces_nonempty_plan(name):
    dataset = generate(name, n_rows=80, seed=1)
    plan = BenchmarkController().experiment_plan(dataset)
    assert plan["detectors"], name
    assert plan["repairs"], name


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_ensemble_detector_finds_real_errors_everywhere(name):
    dataset = generate(name, n_rows=100, seed=2)
    runs = run_detection_suite(dataset, [MinKDetector()], seed=0)
    run = runs[0]
    assert not run.failed, run.failure
    # On every dataset the ensemble recovers a real share of the errors
    # with non-trivial precision.
    assert run.scores.recall > 0.1, (name, run.scores)
    assert run.scores.precision > 0.2, (name, run.scores)
