"""Tests for the benchmark controller, scenarios, and runner."""

import math

import numpy as np
import pytest

from repro.benchmark import (
    ALL_SCENARIOS,
    BenchmarkController,
    S1,
    S4,
    detection_iou,
    estimate_n_clusters,
    evaluate_scenarios,
    run_detection_suite,
    run_repair_suite,
    run_scenario,
    scenario,
)
from repro.datagen import generate
from repro.detectors import MVDetector, PicketDetector, SDDetector
from repro.repair import DeleteRepair, GroundTruthRepair, MeanModeImputeRepair


class TestScenarios:
    def test_five_scenarios(self):
        assert len(ALL_SCENARIOS) == 5
        assert scenario("S2").test == "ground_truth"
        with pytest.raises(KeyError):
            scenario("S9")

    def test_version_resolution(self):
        variant, truth = object(), object()
        assert S1.versions(variant, truth) == (variant, variant)
        assert S4.versions(variant, truth) == (truth, truth)
        assert scenario("S2").versions(variant, truth) == (variant, truth)
        assert scenario("S3").versions(variant, truth) == (truth, variant)


class TestController:
    def test_prunes_outlier_detectors_on_citation(self):
        # Citation has duplicates + mislabels only (the paper's own example
        # of controller pruning).
        dataset = generate("Citation", n_rows=120, seed=0)
        names = {d.name for d in BenchmarkController().applicable_detectors(dataset)}
        assert "SD" not in names
        assert "IQR" not in names
        assert "dBoost" not in names
        assert "KeyCollision" in names
        assert "ZeroER" in names
        assert "CleanLab" in names

    def test_prunes_ml_detectors_on_duplicates(self):
        dataset = generate("Citation", n_rows=120, seed=0)
        names = {d.name for d in BenchmarkController().applicable_detectors(dataset)}
        # RAHA/ED2/Meta cannot align annotator labels with duplicates.
        assert not names & {"RAHA", "ED2", "Meta"}

    def test_signal_requirements(self):
        dataset = generate("SmartFactory", n_rows=120, seed=0)
        names = {d.name for d in BenchmarkController().applicable_detectors(dataset)}
        assert "KATARA" not in names   # no knowledge base
        assert "NADEEF" not in names   # no rules or patterns
        assert "KeyCollision" not in names  # no key columns
        assert "MVD" in names
        assert "SD" in names

    def test_beers_gets_rule_tools(self):
        dataset = generate("Beers", n_rows=150, seed=0)
        names = {d.name for d in BenchmarkController().applicable_detectors(dataset)}
        assert {"KATARA", "NADEEF", "HoloClean"} <= names

    def test_picket_size_boundary(self):
        dataset = generate("SmartFactory", n_rows=120, seed=0)
        tight = BenchmarkController(picket_max_rows=50)
        assert "Picket" not in {
            d.name for d in tight.applicable_detectors(dataset)
        }

    def test_repair_pruning_multiclass(self):
        dataset = generate("SmartFactory", n_rows=120, seed=0)  # 3 classes
        names = {r.name for r in BenchmarkController().applicable_repairs(dataset)}
        assert "BoostClean" not in names
        assert "CPClean" not in names
        assert "ActiveClean" in names

    def test_repair_pruning_regression(self):
        dataset = generate("Nasa", n_rows=120, seed=0)
        names = {r.name for r in BenchmarkController().applicable_repairs(dataset)}
        assert not names & {"ActiveClean", "BoostClean", "CPClean", "CleanLab"}
        assert "MISS-Mix" in names

    def test_experiment_plan(self):
        dataset = generate("Beers", n_rows=100, seed=0)
        plan = BenchmarkController().experiment_plan(dataset)
        assert plan["detectors"]
        assert plan["repairs"]

    def test_no_ground_truth_prunes_oracle_detectors(self):
        dataset = generate("SmartFactory", n_rows=120, seed=0)
        controller = BenchmarkController()
        with_oracle = {
            d.name for d in controller.applicable_detectors(dataset)
        }
        without = {
            d.name
            for d in controller.applicable_detectors(
                dataset, with_ground_truth=False
            )
        }
        assert {"RAHA", "ED2", "Meta"} <= with_oracle
        assert not without & {"RAHA", "ED2", "Meta"}
        # Self-supervised and non-learning tools survive.
        assert "Picket" in without
        assert "SD" in without


class TestDetectionSuite:
    def test_runs_and_scores(self):
        dataset = generate("SmartFactory", n_rows=150, seed=1)
        runs = run_detection_suite(dataset, [MVDetector(), SDDetector(3.0)])
        assert len(runs) == 2
        by_name = {r.detector: r for r in runs}
        assert by_name["MVD"].scores.recall > 0.0
        assert not by_name["MVD"].failed
        assert by_name["MVD"].result.runtime_seconds >= 0.0

    def test_failures_recorded_not_fatal(self):
        dataset = generate("SmartFactory", n_rows=150, seed=1)
        runs = run_detection_suite(
            dataset, [PicketDetector(max_rows=50), MVDetector()]
        )
        by_name = {r.detector: r for r in runs}
        assert by_name["Picket"].failed
        assert "MemoryError" in by_name["Picket"].failure
        assert not by_name["MVD"].failed

    def test_iou_matrix(self):
        dataset = generate("SmartFactory", n_rows=150, seed=1)
        runs = run_detection_suite(dataset, [MVDetector(), SDDetector(3.0)])
        names, matrix = detection_iou(runs, dataset)
        assert names == ["MVD", "SD"]
        assert matrix[0][0] == 1.0


class TestRepairSuite:
    def test_grid_scoring(self):
        dataset = generate("Beers", n_rows=150, seed=2)
        detections = {"oracle": dataset.error_cells}
        runs = run_repair_suite(
            dataset, detections, [GroundTruthRepair(), MeanModeImputeRepair()]
        )
        by_repair = {r.repair: r for r in runs}
        gt = by_repair["GT"]
        assert gt.categorical_f1 == pytest.approx(1.0)
        assert gt.numerical_rmse == pytest.approx(0.0, abs=1e-9)
        assert by_repair["Impute-Mean"].numerical_rmse > 0.0
        assert gt.strategy == "oracle+GT"

    def test_delete_skips_cellwise_scores(self):
        dataset = generate("Beers", n_rows=150, seed=2)
        runs = run_repair_suite(
            dataset, {"oracle": dataset.error_cells}, [DeleteRepair()]
        )
        assert math.isnan(runs[0].numerical_rmse)
        assert runs[0].result.metadata["kept_rows"]


class TestScenarioRunner:
    def test_classification_s4_beats_dirty_s1(self):
        dataset = generate("SmartFactory", n_rows=250, seed=3)
        s1 = run_scenario("S1", dataset.dirty, dataset, "DT", seed=0)
        s4 = run_scenario("S4", dataset.dirty, dataset, "DT", seed=0)
        assert 0.0 <= s1 <= 1.0 and 0.0 <= s4 <= 1.0
        assert s4 >= s1 - 0.05

    def test_regression_metric_is_rmse(self):
        dataset = generate("Nasa", n_rows=200, seed=4)
        value = run_scenario("S4", dataset.dirty, dataset, "Ridge", seed=0)
        assert value >= 0.0

    def test_s2_and_s3_mix_versions(self):
        dataset = generate("Nasa", n_rows=250, seed=11)
        # S2: train dirty, test clean.  S3: train clean, test dirty.
        s2 = run_scenario("S2", dataset.dirty, dataset, "Ridge", seed=0)
        s3 = run_scenario("S3", dataset.dirty, dataset, "Ridge", seed=0)
        s4 = run_scenario("S4", dataset.dirty, dataset, "Ridge", seed=0)
        assert s2 >= 0.0 and s3 >= 0.0
        # Testing on dirty data (S3) cannot beat the all-clean bound.
        assert s3 >= s4 - 1e-9

    def test_s5_uses_variant_for_testing(self):
        # For generic tables, S5 degenerates to training and testing on the
        # variant (its train slot is the ML-oriented method's own model);
        # the runner must still produce a score rather than crash.
        dataset = generate("SmartFactory", n_rows=200, seed=12)
        value = run_scenario("S5", dataset.dirty, dataset, "DT", seed=0)
        assert 0.0 <= value <= 1.0

    def test_clustering_silhouette(self):
        dataset = generate("Water", n_rows=150, seed=5)
        value = run_scenario("S4", dataset.dirty, dataset, "KMeans", seed=0)
        assert -1.0 <= value <= 1.0
        # Clean, well-separated clusters should score decently.
        assert value > 0.3

    def test_delete_variant_with_kept_rows(self):
        dataset = generate("SmartFactory", n_rows=250, seed=6)
        result = DeleteRepair().repair(dataset.context(), dataset.error_cells)
        value = run_scenario(
            "S1", result.repaired, dataset, "DT",
            seed=0, kept_rows=result.metadata["kept_rows"],
        )
        assert 0.0 <= value <= 1.0

    def test_no_task_raises(self):
        dataset = generate("Soccer", n_rows=100, seed=7)
        with pytest.raises(ValueError, match="task"):
            run_scenario("S1", dataset.dirty, dataset, "DT")

    def test_sample_rows_speedup(self):
        dataset = generate("SmartFactory", n_rows=300, seed=8)
        value = run_scenario(
            "S4", dataset.dirty, dataset, "KNN", seed=0, sample_rows=100
        )
        assert 0.0 <= value <= 1.0

    def test_tuned_scenario_run(self):
        dataset = generate("SmartFactory", n_rows=250, seed=13)
        default = run_scenario("S4", dataset.dirty, dataset, "KNN", seed=0)
        tuned = run_scenario(
            "S4", dataset.dirty, dataset, "KNN", seed=0, tune_trials=6
        )
        assert 0.0 <= tuned <= 1.0
        # Tuning must not be catastrophically worse than defaults.
        assert tuned >= default - 0.15

    def test_tuned_regression_run(self):
        dataset = generate("Nasa", n_rows=250, seed=14)
        tuned = run_scenario(
            "S4", dataset.dirty, dataset, "XGB", seed=0, tune_trials=4
        )
        assert tuned >= 0.0


class TestEvaluateScenarios:
    def test_means_and_ab_test(self):
        dataset = generate("SmartFactory", n_rows=250, seed=9)
        evaluation = evaluate_scenarios(
            dataset, dataset.dirty, "dirty", "DT",
            scenario_names=("S1", "S4"), n_seeds=4,
        )
        assert len(evaluation.scores["S1"]) == 4
        assert not math.isnan(evaluation.mean("S1"))
        result = evaluation.ab_test("S1", "S4")
        assert 0.0 <= result.p_value <= 1.0

    def test_identical_versions_not_significant(self):
        dataset = generate("SmartFactory", n_rows=250, seed=10)
        evaluation = evaluate_scenarios(
            dataset, dataset.clean, "gt", "DT",
            scenario_names=("S1", "S4"), n_seeds=4,
        )
        # Variant == ground truth, so S1 and S4 are the same experiment.
        assert not evaluation.ab_test("S1", "S4").reject_null()

    def test_ab_test_unknown_scenario_raises_value_error(self):
        from repro.benchmark.runner import ScenarioEvaluation

        evaluation = ScenarioEvaluation("d", "dirty", "DT")
        evaluation.scores = {"S1": [0.5], "S4": [0.6]}
        with pytest.raises(ValueError, match="unknown scenario 'S9'"):
            evaluation.ab_test("S1", "S9")
        with pytest.raises(ValueError, match="S1, S4"):
            evaluation.ab_test("S2", "S4")

    def test_ab_test_drops_nan_pairs_pairwise(self):
        from repro.benchmark.runner import ScenarioEvaluation

        evaluation = ScenarioEvaluation("d", "dirty", "DT")
        # Seeds 1 and 2 each failed in one scenario: both pairs must be
        # dropped, leaving two complete pairs for the statistic.
        evaluation.scores = {
            "S1": [0.60, math.nan, 0.80, 0.90],
            "S4": [0.50, 0.70, math.nan, 0.20],
        }
        result = evaluation.ab_test("S1", "S4")
        assert result.n_effective == 2
        assert 0.0 <= result.p_value <= 1.0
        assert not math.isnan(result.statistic)

    def test_ab_test_all_pairs_incomplete_raises(self):
        from repro.benchmark.runner import ScenarioEvaluation

        evaluation = ScenarioEvaluation("d", "dirty", "DT")
        evaluation.scores = {
            "S1": [math.nan, 0.5],
            "S4": [0.4, math.nan],
        }
        with pytest.raises(ValueError, match="no complete score pairs"):
            evaluation.ab_test("S1", "S4")


class TestEstimateK:
    def test_recovers_planted_k(self):
        rng = np.random.default_rng(0)
        centers = np.array([[0, 0], [10, 10], [-10, 10]])
        points = np.vstack(
            [c + rng.normal(0, 0.5, size=(30, 2)) for c in centers]
        )
        assert estimate_n_clusters(points, k_max=6) == 3
