"""Row-block sharding: zero-copy views, block fingerprints, the blocked
execution plan, and the blocked == unblocked byte-identity contract.

The substrate's promise is exact: for any block size, streaming
inference over row blocks produces *byte-identical* results to the
whole-table run -- detectors, feature extraction, encoder transforms,
and ML-kernel predictions alike.  The property tests here drive that
promise with hypothesis-chosen tables and block sizes, including blocks
that split rows carrying quoted/multiline text cells straight out of a
CSV round trip.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.benchmark.runner import run_detection_suite
from repro.cache.keys import table_block_fingerprint, table_fingerprint
from repro.context import CleaningContext
from repro.datagen import generate
from repro.dataset import CATEGORICAL, NUMERICAL, Schema, Table
from repro.dataset.encoding import TableEncoder
from repro.detectors import IQRDetector, MVDetector, SDDetector
from repro.detectors.base import BlockwiseDetector
from repro.detectors.features import combined_features
from repro.ml.forest import (
    IsolationForest,
    RandomForestClassifier,
    RandomForestRegressor,
)
from repro.ml.neighbors import KNNClassifier, KNNRegressor
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.parallel.engine import block_spans, block_unit_key


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
#: Text values deliberately include the CSV troublemakers: commas,
#: double quotes, and embedded newlines, all of which force quoting on
#: write and multi-line records on read.
tricky_text = st.text(
    alphabet='abc019 ,"\n._-', min_size=0, max_size=10
)

cell_value = st.one_of(
    st.none(),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    tricky_text,
)


@st.composite
def small_tables(draw, min_rows=1, max_rows=16):
    n_rows = draw(st.integers(min_value=min_rows, max_value=max_rows))
    n_numeric = draw(st.integers(min_value=0, max_value=3))
    n_categorical = draw(st.integers(min_value=0, max_value=3))
    assume(n_numeric + n_categorical >= 1)
    pairs = [(f"n{i}", NUMERICAL) for i in range(n_numeric)] + [
        (f"c{i}", CATEGORICAL) for i in range(n_categorical)
    ]
    schema = Schema.from_pairs(pairs)
    columns = {
        name: draw(st.lists(cell_value, min_size=n_rows, max_size=n_rows))
        for name, _ in pairs
    }
    return Table(schema, columns)


block_sizes = st.integers(min_value=1, max_value=20)


# ----------------------------------------------------------------------
# Block views
# ----------------------------------------------------------------------
class TestBlockViews:
    @pytest.fixture
    def table(self):
        schema = Schema.from_pairs([("n", NUMERICAL), ("c", CATEGORICAL)])
        return Table(
            schema,
            {"n": [1.0, 2.0, 3.0, 4.0, 5.0], "c": ["a", "b", "c", "d", "e"]},
        )

    def test_view_is_zero_copy(self, table):
        view = table.block_view(1, 4)
        assert view.n_rows == 3
        # Shares the parent's buffer: a parent write shows through.
        assert np.shares_memory(
            view.column("n"), table.column("n")
        )

    def test_view_is_read_only(self, table):
        view = table.block_view(0, 2)
        with pytest.raises(TypeError):
            view.set_cell(0, "n", 9.0)
        # The parent stays writable.
        table.set_cell(0, "n", 9.0)
        assert table.get_cell(0, "n") == 9.0

    def test_view_rows_match_parent(self, table):
        view = table.block_view(2, 5)
        for offset in range(3):
            assert view.row(offset) == table.row(2 + offset)

    def test_bad_bounds(self, table):
        with pytest.raises(IndexError):
            table.block_view(-1, 3)
        with pytest.raises(IndexError):
            table.block_view(3, 2)
        with pytest.raises(IndexError):
            table.block_view(0, 6)

    def test_iter_blocks_tiles_exactly(self, table):
        starts = []
        total = 0
        for start, block in table.iter_blocks(2):
            starts.append(start)
            total += block.n_rows
        assert starts == [0, 2, 4]
        assert total == table.n_rows

    def test_iter_blocks_validates(self, table):
        with pytest.raises(ValueError):
            list(table.iter_blocks(0))

    @given(small_tables(), block_sizes)
    @settings(max_examples=40, deadline=None)
    def test_blocks_reassemble_to_parent(self, table, block_rows):
        seen = []
        for start, block in table.iter_blocks(block_rows):
            for offset in range(block.n_rows):
                seen.append(block.row(offset))
        assert seen == [table.row(i) for i in range(table.n_rows)]


# ----------------------------------------------------------------------
# Block fingerprints
# ----------------------------------------------------------------------
class TestBlockFingerprints:
    def _table(self):
        schema = Schema.from_pairs([("n", NUMERICAL)])
        return Table(schema, {"n": [1.0, 2.0, 3.0, 4.0]})

    def test_matches_slice_fingerprint(self):
        table = self._table()
        assert table_block_fingerprint(table, 1, 3) == table_fingerprint(
            table.block_view(1, 3)
        )

    def test_memo_survives_reads_not_writes(self):
        table = self._table()
        first = table_block_fingerprint(table, 0, 2)
        assert table_block_fingerprint(table, 0, 2) == first
        table.set_cell(0, "n", 99.0)
        assert table_block_fingerprint(table, 0, 2) != first
        # An untouched block keeps its (recomputed) digest stable.
        tail = table_block_fingerprint(table, 2, 4)
        table.set_cell(0, "n", 100.0)
        assert table_block_fingerprint(table, 2, 4) == tail

    def test_distinct_blocks_distinct_digests(self):
        table = self._table()
        assert table_block_fingerprint(table, 0, 2) != table_block_fingerprint(
            table, 2, 4
        )


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------
class TestBlockSpans:
    def test_tiles_without_gaps(self):
        spans = block_spans(10, 3)
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_single_span_when_block_exceeds_rows(self):
        assert block_spans(5, 100) == [(0, 5)]

    def test_empty_table_gets_one_empty_span(self):
        assert block_spans(0, 4) == [(0, 0)]

    def test_validates(self):
        with pytest.raises(ValueError):
            block_spans(10, 0)
        with pytest.raises(ValueError):
            block_spans(-1, 4)

    def test_block_unit_key_is_stable(self):
        assert block_unit_key("det/x", 0, 512) == "det/x@rows0-512"


class _BoomOnLaterBlock(SDDetector):
    """SD variant that crashes once detection reaches a given row."""

    name = "SD"

    def __init__(self, boom_at: int) -> None:
        super().__init__()
        self.boom_at = boom_at

    def _detect_block(self, context, fitted, block, start):
        if start >= self.boom_at:
            raise RuntimeError("boom")
        return super()._detect_block(context, fitted, block, start)


class TestBlockedDetectionSuite:
    def test_blocked_matches_unblocked(self):
        dataset = generate("Adult", n_rows=120, seed=2)
        detectors = [MVDetector(), SDDetector(), IQRDetector()]
        plain = run_detection_suite(dataset, detectors, seed=0)
        for block_rows in (1, 7, 64, 120, 999):
            blocked = run_detection_suite(
                dataset,
                [MVDetector(), SDDetector(), IQRDetector()],
                seed=0,
                block_rows=block_rows,
            )
            for a, b in zip(plain, blocked):
                assert a.result.cells == b.result.cells
                assert a.scores == b.scores

    def test_failed_block_fails_the_unit(self):
        dataset = generate("Adult", n_rows=60, seed=2)
        runs = run_detection_suite(
            dataset, [_BoomOnLaterBlock(boom_at=20)], seed=0, block_rows=10
        )
        assert runs[0].failed
        assert runs[0].result.cells == frozenset()

    def test_block_rows_validation(self):
        dataset = generate("Adult", n_rows=20, seed=2)
        with pytest.raises(ValueError):
            run_detection_suite(dataset, [MVDetector()], block_rows=0)


# ----------------------------------------------------------------------
# Byte-identity properties
# ----------------------------------------------------------------------
def _context(table):
    return CleaningContext(dirty=table)


@given(small_tables(), block_sizes)
@settings(max_examples=40, deadline=None)
def test_blockwise_detectors_byte_identical(table, block_rows):
    for detector in (MVDetector(), SDDetector(), IQRDetector()):
        context = _context(table)
        whole = detector._detect(context)
        fitted = detector.fit_profile(context)
        streamed = set()
        for start, block in table.iter_blocks(block_rows):
            streamed |= detector._detect_block(context, fitted, block, start)
        assert streamed == whole, detector.name


@given(small_tables(min_rows=2), block_sizes)
@settings(max_examples=30, deadline=None)
def test_encoder_transform_byte_identical(table, block_rows):
    encoder = TableEncoder().fit(table)
    whole = encoder.transform(table)
    blocked = encoder.transform(table, block_rows=block_rows)
    assert whole.dtype == blocked.dtype
    assert np.array_equal(whole, blocked)  # exact, not approx


@given(small_tables(min_rows=2), block_sizes)
@settings(max_examples=30, deadline=None)
def test_feature_extraction_byte_identical(table, block_rows):
    whole = combined_features(table)
    blocked = combined_features(table, block_rows=block_rows)
    assert whole.keys() == blocked.keys()
    for name in whole:
        assert whole[name].dtype == blocked[name].dtype
        assert np.array_equal(
            whole[name], blocked[name], equal_nan=True
        ), name


@given(
    st.integers(0, 2**32 - 1),
    st.integers(min_value=1, max_value=17),
)
@settings(max_examples=20, deadline=None)
def test_ml_kernels_byte_identical(seed, block_rows):
    rng = np.random.default_rng(seed)
    train = rng.normal(size=(40, 4))
    labels = rng.integers(0, 3, size=40)
    targets = rng.normal(size=40)
    queries = rng.normal(size=(23, 4))

    classifier = DecisionTreeClassifier(max_depth=4, seed=0).fit(train, labels)
    assert np.array_equal(
        classifier.predict_proba(queries),
        classifier.predict_proba(queries, block_rows=block_rows),
    )
    regressor = DecisionTreeRegressor(max_depth=4, seed=0).fit(train, targets)
    assert np.array_equal(
        regressor.predict(queries),
        regressor.predict(queries, block_rows=block_rows),
    )
    forest_c = RandomForestClassifier(n_estimators=5, seed=0).fit(train, labels)
    assert np.array_equal(
        forest_c.predict_proba(queries),
        forest_c.predict_proba(queries, block_rows=block_rows),
    )
    forest_r = RandomForestRegressor(n_estimators=5, seed=0).fit(train, targets)
    assert np.array_equal(
        forest_r.predict(queries),
        forest_r.predict(queries, block_rows=block_rows),
    )
    iso = IsolationForest(n_estimators=5, seed=0).fit(train)
    assert np.array_equal(
        iso.score_samples(queries),
        iso.score_samples(queries, block_rows=block_rows),
    )
    knn_c = KNNClassifier(n_neighbors=3).fit(train, labels)
    assert np.array_equal(
        knn_c.predict_proba(queries),
        knn_c.predict_proba(queries, block_rows=block_rows),
    )
    knn_r = KNNRegressor(n_neighbors=3).fit(train, targets)
    assert np.array_equal(
        knn_r.predict(queries),
        knn_r.predict(queries, block_rows=block_rows),
    )


@given(table=small_tables(min_rows=2), block_rows=block_sizes)
@settings(max_examples=25, deadline=None)
def test_csv_round_trip_then_blocked_identity(tmp_path_factory, table, block_rows):
    """Blocks that split quoted/multiline CSV rows change nothing.

    A text cell holding commas, quotes, or embedded newlines survives
    the CSV round trip as one logical row; block boundaries falling on
    or around such rows must not perturb detection or encoding.
    """
    path = tmp_path_factory.mktemp("csv") / "t.csv"
    table.to_csv(str(path))
    reloaded = Table.from_csv(str(path), table.schema)
    assert reloaded.n_rows == table.n_rows

    context = _context(reloaded)
    for detector in (MVDetector(), SDDetector(), IQRDetector()):
        whole = detector._detect(context)
        fitted = detector.fit_profile(context)
        streamed = set()
        for start, block in reloaded.iter_blocks(block_rows):
            streamed |= detector._detect_block(context, fitted, block, start)
        assert streamed == whole, detector.name

    encoder = TableEncoder().fit(reloaded)
    assert np.array_equal(
        encoder.transform(reloaded),
        encoder.transform(reloaded, block_rows=block_rows),
    )
