"""Tier-1 tests for the content-addressed artifact cache (repro.cache).

Covers the key scheme (content addressing, mutation invalidation,
missing-marker collapse), the store's atomic write/read discipline and
counters, the cached encoding/featurization paths (cache hits must be
byte-identical to fresh computation), and the end-to-end acceptance
property: a cached run's outputs equal an uncached run's, serial or
pooled.
"""

import json

import numpy as np
import pytest

from repro.benchmark import run_detection_suite
from repro.cache import (
    ArtifactCache,
    artifact_key,
    cache_scope,
    canonical_cell,
    config_fingerprint,
    current_cache,
    install_cache,
    table_fingerprint,
)
from repro.cache.store import _ACTIVE
from repro.datagen import generate
from repro.dataset import CATEGORICAL, NUMERICAL, Schema, Table
from repro.dataset.encoding import TableEncoder, encode_supervised
from repro.detectors import MVDetector, SDDetector
from repro.detectors.features import combined_features
from repro.observability import Telemetry, telemetry_scope
from repro.parallel import ProcessPoolExecutor
from repro.resilience import SuiteCheckpoint


def _table(cells=None):
    schema = Schema.from_pairs([("num", NUMERICAL), ("cat", CATEGORICAL)])
    columns = cells or {
        "num": [1.0, 2.5, None, "bad", 4.0],
        "cat": ["a", "b", "a", None, "c"],
    }
    return Table(schema, columns)


@pytest.fixture(autouse=True)
def _no_leaked_cache():
    depth = len(_ACTIVE)
    yield
    assert len(_ACTIVE) == depth, "a test leaked an installed cache"
    del _ACTIVE[depth:]


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
class TestKeys:
    def test_fingerprint_is_content_addressed(self):
        assert table_fingerprint(_table()) == table_fingerprint(_table())
        assert table_fingerprint(_table()) == table_fingerprint(
            _table().copy()
        )

    def test_fingerprint_changes_with_content(self):
        table = _table()
        before = table_fingerprint(table)
        table.set_cell(0, "num", 999.0)
        assert table_fingerprint(table) != before

    def test_fingerprint_memo_invalidated_by_set_cell(self):
        table = _table()
        first = table_fingerprint(table)
        assert table_fingerprint(table) == first  # memo path
        table.set_cell(1, "cat", "zzz")
        changed = table_fingerprint(table)
        assert changed != first
        table.set_cell(1, "cat", "b")
        assert table_fingerprint(table) == first

    def test_missing_markers_collapse(self):
        """Tables differing only in which missing marker they carry
        encode identically, so they may share cache entries."""
        a = _table({"num": [1.0, None], "cat": ["x", None]})
        b = _table({"num": [1.0, float("nan")], "cat": ["x", "NA"]})
        assert table_fingerprint(a) == table_fingerprint(b)

    def test_fingerprint_sensitive_to_schema(self):
        schema_a = Schema.from_pairs([("v", NUMERICAL)])
        schema_b = Schema.from_pairs([("v", CATEGORICAL)])
        values = {"v": [1.0, 2.0]}
        assert table_fingerprint(Table(schema_a, values)) != table_fingerprint(
            Table(schema_b, values)
        )

    def test_canonical_cell_forms(self):
        assert canonical_cell(None) is None
        assert canonical_cell(float("nan")) is None
        assert canonical_cell("NA") is None
        assert canonical_cell(np.int64(3)) == 3
        assert canonical_cell(np.float64(2.5)) == 2.5
        assert canonical_cell("text") == "text"
        assert json.dumps(canonical_cell(object())).startswith('"<object')

    def test_artifact_key_separates_kind_tables_config(self):
        fp = table_fingerprint(_table())
        base = artifact_key("k@v1", [fp], {"a": 1})
        assert artifact_key("k@v2", [fp], {"a": 1}) != base
        assert artifact_key("k@v1", [fp, fp], {"a": 1}) != base
        assert artifact_key("k@v1", [fp], {"a": 2}) != base
        assert artifact_key("k@v1", [fp], {"a": 1}) == base

    def test_config_fingerprint_order_independent(self):
        assert config_fingerprint({"a": 1, "b": 2}) == config_fingerprint(
            {"b": 2, "a": 1}
        )


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------
class TestStore:
    def test_round_trip_preserves_bytes_and_meta(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "art"))
        arrays = {
            "x": np.arange(12, dtype=np.float64).reshape(3, 4),
            "y": np.array([1, 0, 2], dtype=np.int64),
        }
        meta = {"encoder": {"mean": [0.25, -1.5]}, "n": 3}
        key = "ab" + "0" * 62
        cache.put(key, arrays, meta)
        entry = cache.get(key)
        assert entry is not None
        for name, array in arrays.items():
            assert entry.arrays[name].dtype == array.dtype
            assert entry.arrays[name].tobytes() == array.tobytes()
        assert entry.meta == meta

    def test_miss_and_hit_counters(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "art"))
        assert cache.get("cd" + "0" * 62) is None
        cache.put("cd" + "0" * 62, {"v": np.zeros(2)}, {})
        assert cache.get("cd" + "0" * 62) is not None
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["puts"] == 1
        assert stats["bytes_written"] > 0
        assert stats["bytes_read"] == stats["bytes_written"]

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "art"))
        key = "ef" + "0" * 62
        cache.put(key, {"v": np.ones(3)}, {})
        path = cache._path(key)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert cache.get(key) is None
        assert cache.stats()["corrupt"] == 1

    def test_object_dtype_rejected(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "art"))
        with pytest.raises(ValueError, match="object dtype"):
            cache.put("aa" + "0" * 62, {"v": np.array(["s", None])}, {})

    def test_counters_mirror_into_telemetry(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "art"))
        telemetry = Telemetry()
        with telemetry_scope(telemetry):
            cache.get("1b" + "0" * 62)
            cache.put("1b" + "0" * 62, {"v": np.zeros(1)}, {})
            cache.get("1b" + "0" * 62)
        counter = telemetry.metrics.counter
        assert counter("cache.misses").value == 1
        assert counter("cache.puts").value == 1
        assert counter("cache.hits").value == 1
        assert counter("cache.bytes_read").value > 0

    def test_entries_debris_and_sweep(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "art"))
        key = "2c" + "0" * 62
        cache.put(key, {"v": np.zeros(1)}, {})
        # Simulate a writer that died between tmp write and publish.
        stray = cache._tmp_path(key)
        stray.parent.mkdir(parents=True, exist_ok=True)
        stray.write_bytes(b"partial")
        assert cache.entries() == [key]
        assert cache.debris() == [str(stray)]
        assert cache.sweep() == 1
        assert cache.debris() == []
        assert cache.entries() == [key]  # finalized entries untouched

    def test_interrupted_write_never_visible_to_readers(self, tmp_path):
        """A crash before _finalize leaves only .tmp debris: get() of the
        key is a clean miss and a retry publishes normally."""

        class DyingCache(ArtifactCache):
            def _finalize(self, tmp, final):
                raise KeyboardInterrupt

        root = str(tmp_path / "art")
        key = "3d" + "0" * 62
        dying = DyingCache(root)
        with pytest.raises(KeyboardInterrupt):
            dying.put(key, {"v": np.arange(4.0)}, {"m": 1})
        fresh = ArtifactCache(root)
        assert fresh.entries() == []
        assert len(fresh.debris()) == 1
        assert fresh.get(key) is None
        fresh.put(key, {"v": np.arange(4.0)}, {"m": 1})
        entry = fresh.get(key)
        assert entry is not None
        assert entry.arrays["v"].tobytes() == np.arange(4.0).tobytes()

    def test_concurrent_same_key_writes_agree(self, tmp_path):
        """Last-write-wins is safe because same key => same content."""
        root = str(tmp_path / "art")
        a, b = ArtifactCache(root), ArtifactCache(root)
        key = "4e" + "0" * 62
        payload = {"v": np.linspace(0, 1, 7)}
        a.put(key, payload, {"who": "same"})
        b.put(key, payload, {"who": "same"})
        entry = ArtifactCache(root).get(key)
        assert entry.arrays["v"].tobytes() == payload["v"].tobytes()

    def test_spec_round_trip(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "art"))
        clone = ArtifactCache.from_spec(cache.spec())
        assert clone.root == cache.root

    def test_scope_install_and_current(self, tmp_path):
        assert current_cache() is None
        cache = ArtifactCache(str(tmp_path / "art"))
        with cache_scope(cache):
            assert current_cache() is cache
            inner = ArtifactCache(str(tmp_path / "inner"))
            with cache_scope(inner):
                assert current_cache() is inner
            assert current_cache() is cache
        assert current_cache() is None
        with cache_scope(None) as nothing:
            assert nothing is None
            assert current_cache() is None
        install_cache(cache)
        assert current_cache() is cache
        _ACTIVE.pop()


# ----------------------------------------------------------------------
# Cached encoding / featurization paths
# ----------------------------------------------------------------------
class TestCachedEncoding:
    def test_fit_transform_hit_is_byte_identical(self, tmp_path):
        table = _table()
        fresh_encoder = TableEncoder(max_categories=4)
        fresh = fresh_encoder.fit_transform(table)
        cache = ArtifactCache(str(tmp_path / "art"))
        with cache_scope(cache):
            cold = TableEncoder(max_categories=4).fit_transform(table)
            warm_encoder = TableEncoder(max_categories=4)
            warm = warm_encoder.fit_transform(table)
        assert cache.stats()["hits"] == 1
        assert cold.tobytes() == fresh.tobytes()
        assert warm.tobytes() == fresh.tobytes()
        # The restored encoder transforms exactly like a fresh fit.
        probe = _table({"num": [3.0, None], "cat": ["c", "zz"]})
        assert warm_encoder.transform(probe).tobytes() == (
            fresh_encoder.transform(probe).tobytes()
        )
        assert warm_encoder.feature_names == fresh_encoder.feature_names

    def test_fit_transform_key_varies_with_settings(self, tmp_path):
        table = _table()
        cache = ArtifactCache(str(tmp_path / "art"))
        with cache_scope(cache):
            TableEncoder(max_categories=4).fit_transform(table)
            TableEncoder(max_categories=2).fit_transform(table)
            TableEncoder(max_categories=4, scale=False).fit_transform(table)
            TableEncoder(max_categories=4).fit_transform(
                table, exclude=["num"]
            )
        assert cache.stats()["hits"] == 0
        assert cache.stats()["puts"] == 4

    @pytest.mark.parametrize("task,target", [
        ("classification", "cat"), ("regression", "num"),
    ])
    def test_encode_supervised_hit_is_byte_identical(
        self, tmp_path, task, target
    ):
        train = _table()
        test = _table({"num": [7.0, None], "cat": ["b", "q"]})
        fresh = encode_supervised(train, test, target, task)
        cache = ArtifactCache(str(tmp_path / "art"))
        with cache_scope(cache):
            encode_supervised(train, test, target, task)
            warm = encode_supervised(train, test, target, task)
        assert cache.stats()["hits"] == 1
        for got, expected in zip(warm[:4], fresh[:4]):
            assert got.dtype == expected.dtype
            assert got.tobytes() == expected.tobytes()
        assert warm[4].feature_names == fresh[4].feature_names

    def test_encoder_state_round_trip_is_exact(self):
        table = _table()
        encoder = TableEncoder(max_categories=3)
        encoder.fit(table, exclude=["cat"])
        restored = TableEncoder.from_state(
            json.loads(json.dumps(encoder.state()))
        )
        probe = _table()
        assert restored.transform(probe).tobytes() == (
            encoder.transform(probe).tobytes()
        )
        assert restored.n_features == encoder.n_features

    def test_combined_features_hit_is_byte_identical(self, tmp_path):
        table = _table()
        fresh = combined_features(table)
        cache = ArtifactCache(str(tmp_path / "art"))
        with cache_scope(cache):
            combined_features(table)
            warm = combined_features(table)
        assert cache.stats()["hits"] == 1
        assert list(warm) == list(fresh)
        for name in fresh:
            assert warm[name].tobytes() == fresh[name].tobytes()

    def test_no_cache_paths_untouched(self):
        """Without an installed cache nothing is fingerprinted/stored."""
        table = _table()
        assert current_cache() is None
        encoder = TableEncoder()
        matrix = encoder.fit_transform(table)
        assert matrix.shape[0] == table.n_rows
        assert "_fingerprint_memo" not in table.__dict__


# ----------------------------------------------------------------------
# End-to-end: cached vs uncached runs are byte-identical
# ----------------------------------------------------------------------
class _StepClock:
    def __init__(self, tick: float = 2.0 ** -10):
        self.ticks = 0
        self.tick = tick

    def __call__(self) -> float:
        self.ticks += 1
        return self.ticks * self.tick


class TestEndToEndEquivalence:
    def _suite(self, store, cache, executor=None):
        dataset = generate("SmartFactory", n_rows=120, seed=3)
        with SuiteCheckpoint.open(store, "run", resume=False) as ckpt:
            with cache_scope(cache):
                runs = run_detection_suite(
                    dataset, [MVDetector(), SDDetector(3.0)],
                    checkpoint=ckpt, clock=_StepClock(),
                    sleep=lambda s: None, executor=executor,
                )
        return json.dumps(
            [r.to_payload() for r in runs], sort_keys=True
        ).encode()

    @pytest.mark.parametrize("workers", [None, 2])
    def test_cached_run_matches_uncached(self, tmp_path, workers):
        executor = ProcessPoolExecutor(workers) if workers else None
        reference = self._suite(str(tmp_path / "ref.sqlite"), None, executor)
        cache = ArtifactCache(str(tmp_path / "art"))
        cold = self._suite(str(tmp_path / "cold.sqlite"), cache, executor)
        warm = self._suite(str(tmp_path / "warm.sqlite"), cache, executor)
        assert cold == reference
        assert warm == reference
