"""Property-based tests: cache-hit equivalence and kernel equivalence.

Two families, both hypothesis-driven:

- **cache transparency**: for any generated table, reading an encoded
  matrix back through the artifact cache is byte-identical to computing
  it fresh, and the restored encoder state transforms unseen tables
  byte-identically too;
- **kernel equivalence**: the vectorized CART builder and batched
  predictors in :mod:`repro.ml.tree` produce *exactly* the trees and
  predictions of the frozen scalar reference implementations in
  :mod:`repro.ml._reference`, and the blocked distance kernel matches
  the naive broadcast within 1e-12.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cache import ArtifactCache, cache_scope
from repro.dataset import CATEGORICAL, NUMERICAL, Schema, Table
from repro.dataset.encoding import TableEncoder, encode_supervised
from repro.ml._reference import (
    ReferenceDecisionTreeClassifier,
    ReferenceDecisionTreeRegressor,
    reference_pairwise_sq_distances,
)
from repro.ml.neighbors import _pairwise_sq_distances
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
cell_value = st.one_of(
    st.none(),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.text(alphabet="abcxyz019 ._-", min_size=0, max_size=8),
)


@st.composite
def small_tables(draw, min_rows=1):
    n_rows = draw(st.integers(min_value=min_rows, max_value=12))
    n_numeric = draw(st.integers(min_value=0, max_value=3))
    n_categorical = draw(st.integers(min_value=0, max_value=3))
    assume(n_numeric + n_categorical >= 1)
    pairs = [(f"n{i}", NUMERICAL) for i in range(n_numeric)] + [
        (f"c{i}", CATEGORICAL) for i in range(n_categorical)
    ]
    schema = Schema.from_pairs(pairs)
    columns = {
        name: draw(st.lists(cell_value, min_size=n_rows, max_size=n_rows))
        for name, _ in pairs
    }
    return Table(schema, columns)


@st.composite
def feature_matrices(draw, max_rows=40, max_cols=6, tie_prone=False):
    n = draw(st.integers(min_value=2, max_value=max_rows))
    d = draw(st.integers(min_value=1, max_value=max_cols))
    elements = st.floats(min_value=-100, max_value=100, allow_nan=False)
    flat = draw(
        st.lists(elements, min_size=n * d, max_size=n * d)
    )
    matrix = np.array(flat, dtype=np.float64).reshape(n, d)
    if tie_prone or draw(st.booleans()):
        matrix = np.round(matrix, 1)  # force duplicate split values
    return matrix


tree_params = st.fixed_dictionaries(
    {
        "max_depth": st.one_of(st.none(), st.integers(0, 5)),
        "min_samples_split": st.integers(2, 4),
        "min_samples_leaf": st.integers(1, 3),
        "max_features": st.one_of(
            st.none(), st.just("sqrt"), st.just("log2"), st.integers(1, 3)
        ),
        "seed": st.integers(0, 10_000),
    }
)


def _trees_identical(a, b) -> bool:
    if a.is_leaf != b.is_leaf:
        return False
    if not np.array_equal(a.prediction, b.prediction):
        return False
    if a.is_leaf:
        return True
    if a.feature != b.feature or a.threshold != b.threshold:
        return False
    return _trees_identical(a.left, b.left) and _trees_identical(
        a.right, b.right
    )


# ----------------------------------------------------------------------
# Cache transparency
# ----------------------------------------------------------------------
@given(small_tables())
@settings(max_examples=40, deadline=None)
def test_cache_hit_encode_is_byte_identical(tmp_path_factory, table):
    fresh_encoder = TableEncoder(max_categories=5)
    fresh = fresh_encoder.fit_transform(table)
    root = tmp_path_factory.mktemp("art")
    cache = ArtifactCache(str(root))
    with cache_scope(cache):
        cold = TableEncoder(max_categories=5).fit_transform(table)
        warm_encoder = TableEncoder(max_categories=5)
        warm = warm_encoder.fit_transform(table)
    assert cache.stats()["hits"] == 1
    assert cold.dtype == fresh.dtype and warm.dtype == fresh.dtype
    assert cold.tobytes() == fresh.tobytes()
    assert warm.tobytes() == fresh.tobytes()
    # Restored fitted state transforms an unseen table identically.
    assert warm_encoder.transform(table).tobytes() == (
        fresh_encoder.transform(table).tobytes()
    )


@given(small_tables(min_rows=2), st.integers(0, 1))
@settings(max_examples=25, deadline=None)
def test_cache_hit_supervised_encode_is_byte_identical(
    tmp_path_factory, table, task_index
):
    target = table.column_names[0]
    task = ("classification", "regression")[task_index]
    fresh = encode_supervised(table, table, target, task)
    cache = ArtifactCache(str(tmp_path_factory.mktemp("art")))
    with cache_scope(cache):
        encode_supervised(table, table, target, task)
        warm = encode_supervised(table, table, target, task)
    assert cache.stats()["hits"] == 1
    for got, expected in zip(warm[:4], fresh[:4]):
        assert got.dtype == expected.dtype
        assert got.tobytes() == expected.tobytes()


# ----------------------------------------------------------------------
# Kernel equivalence: vectorized vs frozen reference
# ----------------------------------------------------------------------
@given(feature_matrices(), tree_params, st.integers(0, 2))
@settings(max_examples=60, deadline=None)
def test_classifier_tree_and_predictions_match_reference(
    matrix, params, n_extra_classes
):
    rng = np.random.default_rng(params["seed"])
    targets = rng.integers(0, 2 + n_extra_classes, size=len(matrix))
    ours = DecisionTreeClassifier(**params).fit(matrix, targets)
    reference = ReferenceDecisionTreeClassifier(**params).fit(matrix, targets)
    assert _trees_identical(ours.root_, reference.root_)
    assert np.array_equal(
        ours.predict_proba(matrix), reference.predict_proba(matrix)
    )
    assert np.array_equal(ours.predict(matrix), reference.predict(matrix))


@given(feature_matrices(), tree_params)
@settings(max_examples=60, deadline=None)
def test_regressor_tree_and_predictions_match_reference(matrix, params):
    rng = np.random.default_rng(params["seed"] + 1)
    targets = rng.normal(size=len(matrix))
    ours = DecisionTreeRegressor(**params).fit(matrix, targets)
    reference = ReferenceDecisionTreeRegressor(**params).fit(matrix, targets)
    assert _trees_identical(ours.root_, reference.root_)
    assert np.array_equal(ours.predict(matrix), reference.predict(matrix))


@given(feature_matrices(), tree_params)
@settings(max_examples=30, deadline=None)
def test_weighted_classifier_fit_matches_reference(matrix, params):
    rng = np.random.default_rng(params["seed"] + 2)
    targets = rng.integers(0, 2, size=len(matrix))
    weights = rng.random(len(matrix)) + 1e-3
    ours = DecisionTreeClassifier(**params).fit(
        matrix, targets, sample_weight=weights
    )
    reference = ReferenceDecisionTreeClassifier(**params).fit(
        matrix, targets, sample_weight=weights
    )
    assert _trees_identical(ours.root_, reference.root_)


@given(feature_matrices(max_rows=25, max_cols=5), st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_blocked_distances_match_reference(reference_matrix, seed):
    rng = np.random.default_rng(seed)
    queries = rng.normal(scale=50.0, size=(rng.integers(1, 20), reference_matrix.shape[1]))
    ours = _pairwise_sq_distances(queries, reference_matrix, block_size=3)
    naive = reference_pairwise_sq_distances(queries, reference_matrix)
    # The expansion trick computes ||q||^2 + ||r||^2 - 2 q.r, so its
    # rounding error scales with the *norms*, not the distance: two
    # nearly-identical far-from-origin points cancel catastrophically
    # and the absolute error can dwarf the tiny true distance.  The
    # tolerance must therefore scale with the operand magnitudes.
    q_norms = (queries**2).sum(axis=1)
    r_norms = (reference_matrix**2).sum(axis=1)
    scale = np.maximum(q_norms[:, None] + r_norms[None, :], 1.0)
    assert np.all(np.abs(ours - naive) / scale < 1e-12)
