"""Tier-2 chaos suite: seeded fault injection against the full pipeline.

Run with ``pytest -m chaos``.  Asserts the acceptance properties of the
resilience layer: with injected crashes, hangs and corrupted outputs the
detect -> repair -> model pipeline always completes, every failure
surfaces as a categorized FailureRecord (never an unexplained NaN),
quarantined methods are skipped with a recorded reason, and an
interrupted run resumed from the SQLite checkpoint produces byte-identical
final results.
"""

import json
import math

import pytest

from repro.benchmark import (
    evaluate_scenarios,
    run_detection_suite,
    run_repair_suite,
)
from repro.datagen import generate
from repro.detectors import MVDetector, SDDetector
from repro.repair import GroundTruthRepair, MeanModeImputeRepair
from repro.resilience import (
    CAPABILITY,
    DATA,
    CircuitBreaker,
    CorruptingRepair,
    CrashingDetector,
    FlakyDetector,
    FlakyRepair,
    HangingDetector,
    RetryPolicy,
    SuiteCheckpoint,
    TransientError,
)

pytestmark = pytest.mark.chaos


class StepClock:
    """Fake monotonic clock: every reading advances a fixed tick.

    Per-unit elapsed times become deterministic call-count multiples.
    Ticks are counted as integers and the tick is a power of two, so
    readings and their differences are exact floats regardless of the
    absolute offset -- two runs of the same suite produce byte-identical
    payloads even when one of them skipped checkpointed units."""

    def __init__(self, tick: float = 2.0 ** -10):
        self.ticks = 0
        self.tick = tick

    def __call__(self) -> float:
        self.ticks += 1
        return self.ticks * self.tick

    def advance(self, seconds: float) -> None:
        self.ticks += max(1, round(seconds / self.tick))


NO_SLEEP = lambda seconds: None  # noqa: E731


class InterruptingDetector(MVDetector):
    """Simulates the operator killing the process mid-suite.

    Takes the name of the detector whose slot it occupies, so the
    resumed run's real detector maps onto the same checkpoint unit."""

    def __init__(self, name: str):
        self.name = name

    def _detect(self, context):
        raise KeyboardInterrupt


def _dataset():
    return generate("SmartFactory", n_rows=120, seed=3)


class TestChaosDetection:
    def test_flaky_detector_recovers_with_retries(self):
        dataset = _dataset()
        flaky = FlakyDetector(MVDetector(), fail_first=2)
        runs = run_detection_suite(
            dataset, [flaky],
            retry=RetryPolicy(max_attempts=3, base_delay=0.0),
            sleep=NO_SLEEP,
        )
        assert not runs[0].failed
        assert flaky.calls == 3
        baseline = run_detection_suite(dataset, [MVDetector()])
        assert runs[0].scores == baseline[0].scores

    def test_flaky_without_retries_is_transient_failure(self):
        runs = run_detection_suite(_dataset(), [FlakyDetector(MVDetector())])
        assert runs[0].failed
        assert runs[0].failure_record.category == "transient"

    def test_memory_crash_mid_suite_completes_with_record(self):
        dataset = _dataset()
        runs = run_detection_suite(
            dataset,
            [MVDetector(), CrashingDetector(MemoryError, "boom"), SDDetector(3.0)],
        )
        by_name = {r.detector: r for r in runs}
        assert len(runs) == 3
        crashed = by_name["Crashing"]
        assert crashed.failed
        assert crashed.failure_record.category == CAPABILITY
        assert "MemoryError" in crashed.failure
        assert not by_name["MVD"].failed
        assert not by_name["SD"].failed

    def test_hanging_detector_trips_deadline(self):
        dataset = _dataset()
        clock = StepClock()
        hanging = HangingDetector(
            tick=0.05, sleep=lambda s: clock.advance(s)
        )
        runs = run_detection_suite(
            dataset, [hanging, MVDetector()],
            deadline_seconds=0.5, clock=clock, sleep=NO_SLEEP,
        )
        by_name = {r.detector: r for r in runs}
        hung = by_name["Hanging"]
        assert hung.failed
        assert hung.failure_record.error_type == "DeadlineExceeded"
        assert hung.failure_record.category == CAPABILITY
        # The suite moved on: the well-behaved detector still ran.
        assert not by_name["MVD"].failed

    def test_quarantine_trips_after_k_failures_and_records_reason(self):
        dataset = _dataset()
        breaker = CircuitBreaker(threshold=2)
        crasher = FlakyDetector(MVDetector(), fail_first=None, exc=MemoryError)
        for _ in range(2):
            runs = run_detection_suite(dataset, [crasher], breaker=breaker)
            assert runs[0].failed
        assert breaker.is_quarantined("MVD")
        calls_before = crasher.calls
        runs = run_detection_suite(dataset, [crasher], breaker=breaker)
        assert crasher.calls == calls_before  # skipped, not re-executed
        record = runs[0].failure_record
        assert record.quarantined
        assert "2 consecutive failures" in record.message


class TestChaosRepair:
    def _detections(self, dataset):
        runs = run_detection_suite(dataset, [MVDetector()])
        return {runs[0].detector: set(runs[0].result.cells)}

    @pytest.mark.parametrize("mode", ["misalign", "nan_flood", "schema_drift"])
    def test_corrupted_output_booked_as_data_failure(self, mode):
        dataset = _dataset()
        corrupting = CorruptingRepair(MeanModeImputeRepair(), mode=mode)
        runs = run_repair_suite(
            dataset, self._detections(dataset), [corrupting, GroundTruthRepair()]
        )
        by_name = {r.repair: r for r in runs}
        corrupted = by_name["Impute-Mean"]
        assert corrupted.failed
        assert corrupted.failure_record.category == DATA
        assert corrupted.failure_record.error_type == "CorruptOutputError"
        # Scores stay NaN but the reason is recorded, and the healthy
        # repair still completed.
        assert math.isnan(corrupted.categorical_f1)
        assert not by_name["GT"].failed

    def test_flaky_repair_recovers_with_retries(self):
        dataset = _dataset()
        flaky = FlakyRepair(MeanModeImputeRepair(), fail_first=1)
        runs = run_repair_suite(
            dataset, self._detections(dataset), [flaky],
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            sleep=NO_SLEEP,
        )
        assert not runs[0].failed
        assert flaky.calls == 2


class TestChaosFullPipeline:
    def test_pipeline_completes_and_explains_every_nan(self):
        """Detect -> repair -> model under injected chaos: the suite
        finishes and every missing score has a categorized reason."""
        dataset = _dataset()
        detectors = [
            MVDetector(),
            CrashingDetector(MemoryError, "injected"),
            FlakyDetector(SDDetector(3.0), fail_first=5, exc=TransientError),
        ]
        detection_runs = run_detection_suite(dataset, detectors)
        assert len(detection_runs) == len(detectors)
        for run in detection_runs:
            if run.failed:
                assert run.failure_record is not None
                assert run.failure_record.category in (
                    "transient", "capability", "data", "bug",
                )

        detections = {
            r.detector: set(r.result.cells)
            for r in detection_runs
            if not r.failed and r.result.n_detected
        }
        repairs = [
            GroundTruthRepair(),
            CorruptingRepair(MeanModeImputeRepair(), mode="misalign"),
        ]
        repair_runs = run_repair_suite(dataset, detections, repairs)
        for run in repair_runs:
            if run.failed:
                assert run.failure_record is not None
            else:
                assert run.result is not None

        healthy = [r for r in repair_runs if not r.failed]
        assert healthy, "at least the GT repair must survive"
        evaluation = evaluate_scenarios(
            dataset, healthy[0].result.repaired, healthy[0].strategy, "DT",
            scenario_names=("S1",), n_seeds=2, sample_rows=60,
        )
        for i, value in enumerate(evaluation.scores["S1"]):
            if math.isnan(value):
                assert evaluation.failure_reason("S1", i)


class TestResumableRuns:
    def _run_suite(self, path, run_id, detectors, repairs, resume):
        """One full checkpointed detect -> repair -> model pass."""
        dataset = _dataset()
        clock = StepClock()
        with SuiteCheckpoint.open(path, run_id, resume=resume) as ckpt:
            detection_runs = run_detection_suite(
                dataset, detectors, checkpoint=ckpt, clock=clock,
                sleep=NO_SLEEP,
            )
            detections = {
                r.detector: set(r.result.cells)
                for r in detection_runs
                if not r.failed and r.result.n_detected
            }
            repair_runs = run_repair_suite(
                dataset, detections, repairs, checkpoint=ckpt, clock=clock,
                sleep=NO_SLEEP,
            )
            healthy = [r for r in repair_runs if not r.failed]
            evaluation = evaluate_scenarios(
                dataset, healthy[0].result.repaired, healthy[0].strategy,
                "DT", scenario_names=("S1",), n_seeds=2, sample_rows=60,
                checkpoint=ckpt, clock=clock, sleep=NO_SLEEP,
            )
        return detection_runs, repair_runs, evaluation

    @staticmethod
    def _canonical(detection_runs, repair_runs, evaluation) -> bytes:
        payload = {
            "detection": [r.to_payload() for r in detection_runs],
            "repair": [r.to_payload() for r in repair_runs],
            "model": {
                "scores": evaluation.scores,
                "failures": {
                    name: {
                        str(seed): record.to_payload()
                        for seed, record in seeds.items()
                    }
                    for name, seeds in evaluation.failures.items()
                },
            },
        }
        return json.dumps(payload, sort_keys=True).encode()

    def test_killed_then_resumed_run_matches_uninterrupted(self, tmp_path):
        detectors = lambda: [MVDetector(), SDDetector(3.0)]  # noqa: E731
        repairs = lambda: [GroundTruthRepair(), MeanModeImputeRepair()]  # noqa: E731

        # Reference: uninterrupted run.
        reference = self._run_suite(
            str(tmp_path / "ref.sqlite"), "run", detectors(), repairs(),
            resume=False,
        )

        # Interrupted run: the second detector slot kills the process.
        path = str(tmp_path / "killed.sqlite")
        dataset = _dataset()
        clock = StepClock()
        with SuiteCheckpoint.open(path, "run", resume=False) as ckpt:
            with pytest.raises(KeyboardInterrupt):
                run_detection_suite(
                    dataset, [MVDetector(), InterruptingDetector("SD")],
                    checkpoint=ckpt, clock=clock, sleep=NO_SLEEP,
                )
            completed = ckpt.completed_units()
        assert len(completed) == 1  # only MVD finished before the kill

        # Resume: same store, same run id, the real detector lineup.
        resumed = self._run_suite(path, "run", detectors(), repairs(), resume=True)
        assert self._canonical(*resumed) == self._canonical(*reference)

    def test_resume_does_not_reexecute_completed_units(self, tmp_path):
        path = str(tmp_path / "c.sqlite")
        counting = FlakyDetector(MVDetector(), fail_first=0)  # pure counter
        self._run_suite(path, "run", [counting], [GroundTruthRepair()],
                        resume=False)
        calls_before = counting.calls
        self._run_suite(path, "run", [counting], [GroundTruthRepair()],
                        resume=True)
        assert counting.calls == calls_before

    def test_fresh_start_clears_previous_checkpoints(self, tmp_path):
        path = str(tmp_path / "c.sqlite")
        counting = FlakyDetector(MVDetector(), fail_first=0)
        self._run_suite(path, "run", [counting], [GroundTruthRepair()],
                        resume=False)
        calls_before = counting.calls
        self._run_suite(path, "run", [counting], [GroundTruthRepair()],
                        resume=False)
        assert counting.calls > calls_before
