"""Tier-2 chaos suite for the artifact cache (``pytest -m chaos``).

The cache's acceptance properties under fault injection:

- a process killed *mid cache-write* (between the temporary-file write
  and the atomic publish) leaves the cache consistent -- no torn entry
  is ever visible, only ignorable ``*.tmp`` debris -- and the resumed
  run converges to byte-identical results;
- a cached run's checkpoint store is byte-identical to an uncached
  serial run's, for any worker count, cold or warm cache.

Kills are injected at the cache's ``_finalize`` boundary (the exact
window a real worker death would hit between write and publish),
mirroring the established chaos idiom of simulating kills at precise
single-writer boundaries rather than inside pool workers.
"""

import json

import numpy as np
import pytest

from repro.benchmark import evaluate_scenarios
from repro.cache import ArtifactCache, cache_scope
from repro.datagen import generate
from repro.parallel import ProcessPoolExecutor
from repro.resilience import SuiteCheckpoint

pytestmark = pytest.mark.chaos


class StepClock:
    """Deterministic clock (see test_chaos.StepClock)."""

    def __init__(self, tick: float = 2.0 ** -10):
        self.ticks = 0
        self.tick = tick

    def __call__(self) -> float:
        self.ticks += 1
        return self.ticks * self.tick


NO_SLEEP = lambda seconds: None  # noqa: E731


class KillingCache(ArtifactCache):
    """Dies mid cache-write: the ``kill_on``-th publish attempt raises
    KeyboardInterrupt *before* the atomic rename, leaving the temporary
    file as debris -- exactly what a worker killed between write and
    publish leaves behind."""

    def __init__(self, root, kill_on=1):
        super().__init__(root)
        self.kill_on = kill_on
        self.finalizes = 0

    def _finalize(self, tmp, final):
        self.finalizes += 1
        if self.finalizes >= self.kill_on:
            raise KeyboardInterrupt
        super()._finalize(tmp, final)


def _dataset():
    return generate("SmartFactory", n_rows=120, seed=3)


def _evaluate(store_path, cache, executor=None, resume=False):
    dataset = _dataset()
    with SuiteCheckpoint.open(store_path, "run", resume=resume) as ckpt:
        with cache_scope(cache):
            evaluation = evaluate_scenarios(
                dataset, dataset.dirty, "dirty", "DT",
                scenario_names=("S1", "S4"), n_seeds=2, sample_rows=60,
                checkpoint=ckpt, clock=StepClock(), sleep=NO_SLEEP,
                executor=executor,
            )
    return evaluation


def _evaluation_canonical(evaluation) -> bytes:
    payload = {
        "scores": evaluation.scores,
        "failures": {
            name: {
                str(seed): record.to_payload()
                for seed, record in seeds.items()
            }
            for name, seeds in evaluation.failures.items()
        },
    }
    return json.dumps(payload, sort_keys=True).encode()


def _store_canonical(store_path) -> bytes:
    """Every completed unit's payload, in canonical key order."""
    with SuiteCheckpoint.open(store_path, "run", resume=True) as ckpt:
        units = sorted(ckpt.completed_units())
        payload = {unit: ckpt.get(unit) for unit in units}
    return json.dumps(payload, sort_keys=True).encode()


class TestKillMidCacheWrite:
    def test_kill_leaves_cache_consistent_and_resume_matches(self, tmp_path):
        # Reference: uncached serial run.
        ref_store = str(tmp_path / "ref.sqlite")
        reference = _evaluate(ref_store, cache=None)

        # Killed run: the first cache publish dies mid-write.
        root = str(tmp_path / "art")
        killed_store = str(tmp_path / "killed.sqlite")
        dying = KillingCache(root, kill_on=1)
        with pytest.raises(KeyboardInterrupt):
            _evaluate(killed_store, cache=dying)

        # Consistency: no finalized entry was published, the torn write
        # is visible only as *.tmp debris, and reads stay clean misses.
        wreck = ArtifactCache(root)
        assert wreck.entries() == []
        assert len(wreck.debris()) == 1
        assert wreck.get("00" + "0" * 62) is None
        assert wreck.stats()["corrupt"] == 0

        # Resume with a healthy cache on the same root and store.
        resumed = _evaluate(
            killed_store, cache=ArtifactCache(root), resume=True
        )
        assert _evaluation_canonical(resumed) == _evaluation_canonical(
            reference
        )
        assert _store_canonical(killed_store) == _store_canonical(ref_store)

        # The debris never became an entry; every finalized entry loads.
        healthy = ArtifactCache(root)
        assert healthy.sweep() == 1
        for key in healthy.entries():
            assert healthy.get(key) is not None

    def test_kill_later_in_run_still_converges(self, tmp_path):
        ref_store = str(tmp_path / "ref.sqlite")
        reference = _evaluate(ref_store, cache=None)
        root = str(tmp_path / "art")
        killed_store = str(tmp_path / "killed.sqlite")
        with pytest.raises(KeyboardInterrupt):
            _evaluate(killed_store, cache=KillingCache(root, kill_on=3))
        published = ArtifactCache(root)
        assert len(published.entries()) == 2  # the first two survived
        for key in published.entries():
            assert published.get(key) is not None
        resumed = _evaluate(
            killed_store, cache=ArtifactCache(root), resume=True
        )
        assert _evaluation_canonical(resumed) == _evaluation_canonical(
            reference
        )
        assert _store_canonical(killed_store) == _store_canonical(ref_store)


class TestCachedUncachedStoreEquivalence:
    @pytest.mark.parametrize("workers", [None, 2, 3])
    def test_checkpoint_store_identical_cached_vs_uncached(
        self, tmp_path, workers
    ):
        executor = ProcessPoolExecutor(workers) if workers else None
        ref_store = str(tmp_path / "ref.sqlite")
        reference = _evaluate(ref_store, cache=None)

        cache = ArtifactCache(str(tmp_path / "art"))
        cold_store = str(tmp_path / "cold.sqlite")
        cold = _evaluate(cold_store, cache=cache, executor=executor)
        warm_store = str(tmp_path / "warm.sqlite")
        warm = _evaluate(warm_store, cache=cache, executor=executor)

        assert _evaluation_canonical(cold) == _evaluation_canonical(reference)
        assert _evaluation_canonical(warm) == _evaluation_canonical(reference)
        assert _store_canonical(cold_store) == _store_canonical(ref_store)
        assert _store_canonical(warm_store) == _store_canonical(ref_store)
        if workers is None:
            # The warm serial pass hit every supervised-encode artifact.
            assert cache.stats()["hits"] > 0

    def test_scores_are_real_numbers_not_placeholders(self, tmp_path):
        evaluation = _evaluate(
            str(tmp_path / "s.sqlite"),
            cache=ArtifactCache(str(tmp_path / "art")),
        )
        scores = np.asarray(evaluation.scores["S4"], dtype=float)
        assert np.isfinite(scores).all()
