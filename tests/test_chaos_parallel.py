"""Tier-2 chaos suite for the parallel engine (``pytest -m chaos``).

Extends the serial chaos acceptance properties to ``--workers N``: with
injected crashes, hangs, corrupted outputs and mid-run kills, a process-
pool run produces byte-identical payloads to the serial reference, and a
killed parallel run resumed from its checkpoint converges to the same
bytes.  Kills are simulated at the single-writer boundary (the driver's
checkpoint ``put``), never inside pool workers -- killing a worker is a
pool-management failure, not a suite interrupt.
"""

import json
import os
import signal

import pytest

from repro.benchmark import (
    evaluate_scenarios,
    run_detection_suite,
    run_repair_suite,
)
from repro.datagen import generate
from repro.detectors import MVDetector, SDDetector
from repro.dataplane import live_segments
from repro.parallel import ProcessPoolExecutor, WorkerCrashError, null_sleep
from repro.repair import GroundTruthRepair, MeanModeImputeRepair
from repro.repository import CheckpointStore
from repro.resilience import (
    CircuitBreaker,
    CorruptingRepair,
    CrashingDetector,
    HangingDetector,
    SuiteCheckpoint,
)

pytestmark = pytest.mark.chaos


class StepClock:
    """Deterministic clock (see test_chaos.StepClock): power-of-two tick
    so per-unit elapsed times are exact call-count multiples regardless
    of the absolute offset -- which is what makes worker-process clock
    copies agree with the serial run."""

    def __init__(self, tick: float = 2.0 ** -10):
        self.ticks = 0
        self.tick = tick

    def __call__(self) -> float:
        self.ticks += 1
        return self.ticks * self.tick

    def advance(self, seconds: float) -> None:
        self.ticks += max(1, round(seconds / self.tick))


class KillingCheckpoint(SuiteCheckpoint):
    """Raises KeyboardInterrupt after ``kill_after`` finalized units --
    the operator hitting Ctrl-C at an exact unit boundary."""

    def __init__(self, store, run_id, kill_after):
        super().__init__(store, run_id)
        self.kill_after = kill_after
        self.puts = 0

    def put(self, unit, payload):
        super().put(unit, payload)
        self.puts += 1
        if self.puts >= self.kill_after:
            raise KeyboardInterrupt


def _dataset():
    return generate("SmartFactory", n_rows=120, seed=3)


def _canonical(runs) -> bytes:
    return json.dumps(
        [r.to_payload() for r in runs], sort_keys=True
    ).encode()


def _chaos_detection(executor, checkpoint=None):
    clock = StepClock()
    detectors = [
        MVDetector(),
        CrashingDetector(MemoryError, "boom"),
        HangingDetector(tick=0.05, sleep=clock.advance),
        SDDetector(3.0),
    ]
    return run_detection_suite(
        _dataset(),
        detectors,
        deadline_seconds=0.5,
        clock=clock,
        sleep=null_sleep,
        checkpoint=checkpoint,
        executor=executor,
    )


class TestChaosFaultsUnderParallel:
    def test_detection_faults_match_serial_bytes(self):
        reference = _canonical(_chaos_detection(None))
        for workers in (2, 3):
            runs = _chaos_detection(ProcessPoolExecutor(workers))
            assert _canonical(runs) == reference

    def test_repair_faults_and_quarantine_match_serial_bytes(self):
        def grid(executor):
            dataset = _dataset()
            clock = StepClock()
            detection_runs = run_detection_suite(
                dataset,
                [MVDetector(), SDDetector(3.0)],
                clock=clock,
                sleep=null_sleep,
            )
            detections = {
                r.detector: set(r.result.cells)
                for r in detection_runs
                if not r.failed and r.result.n_detected
            }
            breaker = CircuitBreaker(threshold=2)
            runs = run_repair_suite(
                dataset,
                detections,
                [
                    CorruptingRepair(MeanModeImputeRepair(), mode="misalign"),
                    GroundTruthRepair(),
                ],
                clock=clock,
                sleep=null_sleep,
                breaker=breaker,
                executor=executor,
            )
            return runs, breaker

        reference, reference_breaker = grid(None)
        assert reference_breaker.is_quarantined("Impute-Mean")
        pooled, pooled_breaker = grid(ProcessPoolExecutor(2))
        assert _canonical(pooled) == _canonical(reference)
        assert pooled_breaker.quarantined == reference_breaker.quarantined

    def test_scenario_stage_matches_serial(self):
        def evaluate(executor):
            dataset = _dataset()
            return evaluate_scenarios(
                dataset,
                dataset.dirty,
                "dirty",
                "DT",
                scenario_names=("S1", "S4"),
                n_seeds=2,
                sample_rows=60,
                clock=StepClock(),
                sleep=null_sleep,
                executor=executor,
            )

        reference = evaluate(None)
        pooled = evaluate(ProcessPoolExecutor(2))
        assert pooled.scores == reference.scores
        assert {
            name: sorted(seeds) for name, seeds in pooled.failures.items()
        } == {
            name: sorted(seeds)
            for name, seeds in reference.failures.items()
        }


class TestKilledParallelRunResumes:
    def test_killed_pool_run_resumed_matches_serial_reference(self, tmp_path):
        # Reference: uninterrupted serial run (no checkpoint involved).
        reference = _canonical(_chaos_detection(None))

        # Parallel run killed after two finalized units.
        path = str(tmp_path / "killed.sqlite")
        store = CheckpointStore(path)
        killing = KillingCheckpoint(store, "run", kill_after=2)
        try:
            with pytest.raises(KeyboardInterrupt):
                _chaos_detection(ProcessPoolExecutor(3), checkpoint=killing)
            assert len(killing.completed_units()) == 2
        finally:
            store.close()

        # Resume under the pool: cached units load, the rest execute.
        with SuiteCheckpoint.open(path, "run", resume=True) as ckpt:
            resumed = _chaos_detection(
                ProcessPoolExecutor(3), checkpoint=ckpt
            )
        assert _canonical(resumed) == reference

    def test_killed_pool_run_resumed_serially_matches_too(self, tmp_path):
        # Executor choice is free across the kill boundary: kill under
        # the pool, resume serially, same bytes.
        reference = _canonical(_chaos_detection(None))
        path = str(tmp_path / "killed.sqlite")
        store = CheckpointStore(path)
        killing = KillingCheckpoint(store, "run", kill_after=1)
        try:
            with pytest.raises(KeyboardInterrupt):
                _chaos_detection(ProcessPoolExecutor(2), checkpoint=killing)
        finally:
            store.close()
        with SuiteCheckpoint.open(path, "run", resume=True) as ckpt:
            resumed = _chaos_detection(None, checkpoint=ckpt)
        assert _canonical(resumed) == reference


# ----------------------------------------------------------------------
# Worker death (SIGKILL mid-unit) and data-plane hygiene
# ----------------------------------------------------------------------
class KamikazeDetector(MVDetector):
    """SIGKILLs its own process the first time it runs outside the
    driver -- a real worker death mid-unit, not a raised exception.

    One-shot via a flag file, and guarded by the driver pid so the
    serial reference (and the resumed run) execute it as a plain
    ``MVDetector`` with the same unit key and payload bytes.
    """

    def __init__(self, driver_pid: int, flag_path: str) -> None:
        super().__init__()
        self.driver_pid = driver_pid
        self.flag_path = flag_path

    def _detect(self, context):
        if os.getpid() != self.driver_pid and not os.path.exists(
            self.flag_path
        ):
            with open(self.flag_path, "w") as flag:
                flag.write(str(os.getpid()))
            os.kill(os.getpid(), signal.SIGKILL)
        return super()._detect(context)


def _kill_grid(tmp_path, executor, checkpoint=None):
    flag = str(tmp_path / "kamikaze.flag")
    return run_detection_suite(
        _dataset(),
        [KamikazeDetector(os.getpid(), flag), SDDetector(3.0)],
        clock=StepClock(),
        sleep=null_sleep,
        checkpoint=checkpoint,
        executor=executor,
    )


class TestWorkerDeathMidUnit:
    def test_sigkill_raises_worker_crash_and_leaks_nothing(self, tmp_path):
        before = set(live_segments())
        with pytest.raises(WorkerCrashError):
            _kill_grid(tmp_path, ProcessPoolExecutor(2, poll_seconds=0.05))
        assert (tmp_path / "kamikaze.flag").exists(), (
            "the kamikaze unit must actually have run in a worker"
        )
        assert not (set(live_segments()) - before), (
            "a worker SIGKILL must not leak data-plane segments"
        )

    def test_killed_run_resumes_to_serial_reference(self, tmp_path):
        # Serial reference: same grid, flag pre-set so nothing dies.
        reference_dir = tmp_path / "reference"
        reference_dir.mkdir()
        (reference_dir / "kamikaze.flag").write_text("disarmed")
        reference = _canonical(_kill_grid(reference_dir, None))

        path = str(tmp_path / "killed.sqlite")
        store = CheckpointStore(path)
        try:
            killed = SuiteCheckpoint(store, "run")
            with pytest.raises(WorkerCrashError):
                _kill_grid(
                    tmp_path,
                    ProcessPoolExecutor(2, poll_seconds=0.05),
                    checkpoint=killed,
                )
        finally:
            store.close()

        # Resume under the pool: the flag file disarms the kamikaze,
        # cached units load, lost units re-execute -- same bytes.
        with SuiteCheckpoint.open(path, "run", resume=True) as ckpt:
            resumed = _kill_grid(
                tmp_path, ProcessPoolExecutor(2), checkpoint=ckpt
            )
        assert _canonical(resumed) == reference

    def test_pool_teardown_after_interrupt_leaks_nothing(self, tmp_path):
        before = set(live_segments())
        path = str(tmp_path / "interrupted.sqlite")
        store = CheckpointStore(path)
        killing = KillingCheckpoint(store, "run", kill_after=1)
        try:
            with pytest.raises(KeyboardInterrupt):
                _chaos_detection(ProcessPoolExecutor(2), checkpoint=killing)
        finally:
            store.close()
        assert not (set(live_segments()) - before)
