"""Tier-2 chaos suite for the benchmark service (``pytest -m chaos``).

The acceptance property: SIGKILL a worker while it holds a job, and the
system heals itself -- the lease expires, the job is re-queued *exactly
once*, a surviving worker resumes it from the checkpoint store, and both
the final result and the checkpoint store are byte-identical to an
uninterrupted run of the same configuration.
"""

import json
import sqlite3
import time

import pytest

from repro.repository.store import CheckpointStore
from repro.service import (
    BenchService,
    JobSpec,
    SchedulerPolicy,
    ServiceClient,
    canonical_result_text,
)
from repro.service.testing import attempt_count, deterministic_execute

pytestmark = pytest.mark.chaos


def _store_dump(path, run_id) -> bytes:
    """Canonical bytes of one run's checkpoint rows (unit -> payload)."""
    store = CheckpointStore(str(path))
    try:
        dump = {
            unit: store.get(run_id, unit) for unit in store.units(run_id)
        }
    finally:
        store.close()
    return json.dumps(dump, sort_keys=True, allow_nan=False).encode()


def _wait_for(predicate, deadline_seconds=60.0, poll_seconds=0.05):
    deadline = time.monotonic() + deadline_seconds
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll_seconds)
    return False


class TestWorkerKill:
    def test_sigkilled_worker_requeues_exactly_once_and_matches(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SERVICE_TEST_DIR", str(tmp_path))
        spec = JobSpec(
            kind="detect", dataset="SmartFactory", rows=100, seed=7,
            options={"detectors": ["MVD", "SD", "IQR"]},
        )
        queue_path = str(tmp_path / "queue.sqlite")
        store_path = str(tmp_path / "store.sqlite")
        service = BenchService(
            queue_path,
            n_workers=2,
            policy=SchedulerPolicy(lease_seconds=2.0),
            execute_ref="repro.service.testing:chaos_execute",
            store_path=store_path,
            events_path=str(tmp_path / "events.jsonl"),
        )
        with service:
            client = ServiceClient(service.address, timeout=30.0)
            receipt = client.submit(spec.to_payload())
            assert receipt["job_id"] == spec.job_id

            # chaos_execute finishes the first attempt's real execution
            # (checkpoints committed), drops the ready marker, then
            # parks without reporting back: the SIGKILL window.
            ready = tmp_path / f"{spec.job_id}.ready"
            assert _wait_for(ready.exists), "first attempt never parked"

            # SIGKILL exactly the worker that holds the lease.
            read = sqlite3.connect(queue_path)
            (owner,) = read.execute(
                "SELECT lease_owner FROM jobs WHERE job_id = ?",
                (spec.job_id,),
            ).fetchone()
            read.close()
            assert owner is not None
            victim = int(owner.rsplit("-", 1)[1])
            service.pool.kill(victim)
            assert service.pool.alive_count() == 1

            # The lease expires, the survivor re-leases and resumes.
            record = client.wait(spec.job_id, deadline_seconds=120.0)
            assert record["state"] == "done"
            assert record["requeues"] == 1  # re-queued exactly once
            assert record["attempts"] == 2
            service_text = client.result_text(spec.job_id)
            stats = client.stats()
            assert stats["counters"]["jobs.requeued"] == 1
            assert stats["counters"]["jobs.completed"] == 1

        # Both executions actually ran (kill was mid-job, not before).
        assert attempt_count(tmp_path, spec.job_id) == 2

        # Uninterrupted reference run: same config, fresh store.
        reference_store = tmp_path / "reference.sqlite"
        reference = deterministic_execute(
            spec.to_payload(), store_path=str(reference_store)
        )
        assert service_text == canonical_result_text(reference)
        assert _store_dump(store_path, spec.job_id) == _store_dump(
            reference_store, spec.job_id
        )

    def test_lease_expiry_bounds_repeated_kills(self, tmp_path, monkeypatch):
        """Kill every worker that ever picks the job up: attempts are
        bounded by the policy and the job fails with the categorized
        lease-expiry record instead of looping forever."""
        monkeypatch.setenv("REPRO_SERVICE_TEST_DIR", str(tmp_path))
        spec = JobSpec(
            kind="detect", dataset="Nasa", rows=60, seed=1,
            options={"detectors": ["MVD"]},
        )
        service = BenchService(
            str(tmp_path / "queue.sqlite"),
            n_workers=1,
            policy=SchedulerPolicy(lease_seconds=1.0, max_attempts=2),
            execute_ref="repro.service.testing:hanging_execute",
        )
        with service:
            client = ServiceClient(service.address, timeout=30.0)
            client.submit(spec.to_payload())
            ready = tmp_path / f"{spec.job_id}.ready"
            assert _wait_for(ready.exists)
            service.pool.kill(0)

            # First expiry sweep: requeued (attempt budget not spent).
            assert _wait_for(
                lambda: service.queue.requeue_expired() == [spec.job_id]
                or client.status(spec.job_id)["state"] == "queued"
            )
            assert client.status(spec.job_id)["requeues"] == 1

            # A second doomed worker takes the final attempt and also
            # goes silent; the next sweep declares the job failed.
            job = service.queue.lease("ghost-worker")
            assert job is not None and job.attempts == 2
            time.sleep(1.2)  # real clock: let the 1s lease lapse
            service.queue.requeue_expired()
            record = client.status(spec.job_id)
            assert record["state"] == "failed"
            assert record["failure"]["error_type"] == "LeaseExpired"
            assert record["failure"]["category"] == "capability"
