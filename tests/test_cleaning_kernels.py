"""Property suite: vectorized cleaning kernels == frozen scalar references.

The cleaning-stage hot paths (dBoost histogram scoring, duplicate
blocking + pair features, KATARA alignment, FD/DC checking, Baran and
HoloClean candidate scoring) were rewritten on numpy with a hard
contract: **bit-identical outputs** to the scalar implementations
frozen in the ``_reference`` modules.  Hypothesis drives that contract
with adversarial tables -- mixed types, NaN/None holes, unicode,
empty columns -- and the comparisons are strict: byte equality for
masks and feature matrices, set equality for violation sets, and
type-plus-bit-pattern equality for repaired cells (``values_equal``'s
tolerance would hide drift).

Also covered here:

- blocked == unblocked detection through the public suite runner;
- checkpoint stores byte-identical across kernel choice (reference vs
  vectorized), worker count, and block size;
- duplicate canonical-row selection stable under permutations of the
  block/group discovery order.
"""

import json
import math
import random

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.benchmark.runner import run_detection_suite, run_repair_suite
from repro.constraints import DenialConstraint, FunctionalDependency, Predicate
from repro.constraints._reference import (
    reference_binary_violations,
    reference_fd_majority_repairs,
    reference_fd_violations,
    reference_unary_violations,
)
from repro.context import CleaningContext
from repro.datagen import generate
from repro.dataset import CATEGORICAL, NUMERICAL, Schema, Table
from repro.detectors import (
    DBoostDetector,
    KeyCollisionDetector,
    KnowledgeBase,
    MVDetector,
    NadeefDetector,
    ZeroERDetector,
)
from repro.detectors._reference import (
    reference_build_blocks,
    reference_enumerate_block_pairs,
    reference_histogram_outliers,
    reference_pair_feature_matrix,
)
from repro.detectors.dboost import _histogram_outliers
from repro.detectors.duplicates import (
    _duplicate_cells,
    _enumerate_block_pairs,
    build_blocks,
    column_standard_deviations,
    pair_feature_matrix,
)
from repro.detectors.katara import katara_violations
from repro.kernels import reference_kernels
from repro.parallel import ProcessPoolExecutor
from repro.repair import BaranRepair, HoloCleanRepair
from repro.resilience import SuiteCheckpoint

# ----------------------------------------------------------------------
# Strategies: adversarial small tables
# ----------------------------------------------------------------------
#: Unicode text with whitespace, case variants, digits and separators --
#: everything the normalizers have to chew through.
unicode_text = st.text(alphabet="abAB019éü日 ,._-", min_size=0, max_size=8)

numeric_cell = st.one_of(
    st.none(),
    st.sampled_from(
        [float("nan"), float("inf"), float("-inf"), -0.0, 0.0]
    ),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)
categorical_cell = st.one_of(st.none(), unicode_text)


@st.composite
def small_tables(draw, min_rows=1, max_rows=16, min_categorical=0):
    n_rows = draw(st.integers(min_value=min_rows, max_value=max_rows))
    n_numeric = draw(st.integers(min_value=0, max_value=2))
    n_categorical = draw(
        st.integers(min_value=min_categorical, max_value=3)
    )
    assume(n_numeric + n_categorical >= 1)
    pairs = [(f"n{i}", NUMERICAL) for i in range(n_numeric)] + [
        (f"c{i}", CATEGORICAL) for i in range(n_categorical)
    ]
    schema = Schema.from_pairs(pairs)
    columns = {}
    for name, kind in pairs:
        strategy = numeric_cell if kind == NUMERICAL else categorical_cell
        if draw(st.booleans()) and draw(st.integers(0, 4)) == 0:
            # Occasionally a fully-empty column.
            columns[name] = [None] * n_rows
        else:
            columns[name] = draw(
                st.lists(strategy, min_size=n_rows, max_size=n_rows)
            )
    return Table(schema, columns)


@st.composite
def detection_sets(draw, table, max_size=8):
    """Detected cells, including out-of-range rows and ghost columns."""
    columns = list(table.column_names) + ["ghost"]
    return draw(
        st.sets(
            st.tuples(
                st.integers(min_value=-1, max_value=table.n_rows),
                st.sampled_from(columns),
            ),
            max_size=max_size,
        )
    )


def _strict_cell_diff(got: Table, want: Table):
    """Cells differing by type or bit pattern (NaN == NaN allowed)."""
    diff = []
    for name in got.schema.names:
        for i in range(got.n_rows):
            a, b = got.get_cell(i, name), want.get_cell(i, name)
            if type(a) is not type(b):
                diff.append(((i, name), a, b))
                continue
            if isinstance(a, float):
                same = (a != a and b != b) or (
                    np.float64(a).tobytes() == np.float64(b).tobytes()
                )
            else:
                same = a == b
            if not same:
                diff.append(((i, name), a, b))
    return diff


# ----------------------------------------------------------------------
# dBoost: histogram scoring
# ----------------------------------------------------------------------
class TestHistogramKernel:
    @given(
        st.lists(numeric_cell, min_size=0, max_size=40),
        st.floats(min_value=0.01, max_value=0.5),
        st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_reference(self, values, threshold, n_bins):
        # The kernel's production input is ``Table.as_float`` output,
        # where ``coerce_float`` maps non-finite payloads to NaN.
        array = np.array(
            [
                np.nan if v is None or not math.isfinite(float(v)) else float(v)
                for v in values
            ],
            dtype=float,
        )
        got = _histogram_outliers(array, threshold, n_bins)
        want = reference_histogram_outliers(array, threshold, n_bins)
        assert got.dtype == want.dtype == np.bool_
        assert np.array_equal(got, want)


# ----------------------------------------------------------------------
# Duplicates: blocking, pair enumeration, pair features
# ----------------------------------------------------------------------
class TestDuplicateKernels:
    @given(small_tables())
    @settings(max_examples=40, deadline=None)
    def test_blocks_same_key_multisets(self, table):
        got = build_blocks(table)
        want = reference_build_blocks(table)
        assert {k: sorted(v) for k, v in got.items()} == {
            k: sorted(v) for k, v in want.items()
        }

    @given(small_tables(), st.sampled_from([1, 2, 5, 100_000]))
    @settings(max_examples=40, deadline=None)
    def test_pair_enumeration_matches_reference(self, table, max_pairs):
        blocks = reference_build_blocks(table)
        got = _enumerate_block_pairs(dict(blocks), max_pairs, 60)
        want = reference_enumerate_block_pairs(dict(blocks), max_pairs, 60)
        assert got == want

    @given(small_tables(min_rows=2))
    @settings(max_examples=30, deadline=None)
    def test_pair_feature_matrix_byte_identical(self, table):
        # Feature the blocking candidates when there are any, otherwise
        # every row pair: the featurizer itself is blocking-agnostic.
        pairs = reference_enumerate_block_pairs(
            reference_build_blocks(table), 500, 60
        ) or [
            (i, j)
            for i in range(table.n_rows)
            for j in range(i + 1, table.n_rows)
        ]
        stds = column_standard_deviations(table)
        got = pair_feature_matrix(table, pairs, stds)
        want = reference_pair_feature_matrix(table, pairs, stds)
        assert got.shape == want.shape
        assert got.dtype == want.dtype
        assert got.tobytes() == want.tobytes()

    @given(small_tables(min_rows=2), st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_canonical_rows_stable_under_discovery_order(self, table, rnd):
        """Satellite regression: the canonical (unflagged) row of a
        duplicate group must not depend on the order blocking happened
        to discover the group's members."""
        n = table.n_rows
        groups = [
            list(range(0, n, 2)) or [0],
            list(range(1, n, 2)) or [0],
        ]
        groups = [g for g in groups if len(g) > 1]
        assume(groups)
        baseline = _duplicate_cells(table, groups)
        shuffled = [list(g) for g in groups]
        for g in shuffled:
            rnd.shuffle(g)
        rnd.shuffle(shuffled)
        assert _duplicate_cells(table, shuffled) == baseline

    @given(small_tables(), st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_pair_enumeration_stable_under_block_insertion_order(
        self, table, rnd
    ):
        blocks = reference_build_blocks(table)
        baseline = _enumerate_block_pairs(dict(blocks), 100_000, 60)
        keys = list(blocks)
        rnd.shuffle(keys)
        permuted = {k: blocks[k] for k in keys}
        assert _enumerate_block_pairs(permuted, 100_000, 60) == baseline


# ----------------------------------------------------------------------
# KATARA: alignment and violations
# ----------------------------------------------------------------------
class TestKataraKernels:
    @given(small_tables(min_categorical=1), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_alignment_and_violations_match_reference(self, table, salt):
        cats = [
            c
            for c in table.column_names
            if table.schema.kind_of(c) == CATEGORICAL
        ]
        kb = KnowledgeBase()
        alignment = {}
        for idx, column in enumerate(cats):
            values = sorted(
                {
                    v
                    for v in (
                        KnowledgeBase.normalize(x)
                        for x in table.column(column)
                    )
                    if v is not None
                }
            )
            domain = {
                v for i, v in enumerate(values) if (i + salt) % 2 == 0
            } or {"fallback"}
            kb.add_domain(f"concept{idx}", domain)
            alignment[column] = f"concept{idx}"
        if len(cats) >= 2:
            observed = [
                (
                    KnowledgeBase.normalize(table.get_cell(i, cats[0])),
                    KnowledgeBase.normalize(table.get_cell(i, cats[1])),
                )
                for i in range(table.n_rows)
            ]
            pairs = {
                (a, b)
                for i, (a, b) in enumerate(observed)
                if a is not None and b is not None and (i + salt) % 2
            }
            kb.add_relation("concept0", "concept1", pairs)
        for column in cats:
            got_concept = kb.align_column(table, column, 0.3)
            with reference_kernels():
                want_concept = kb.align_column(table, column, 0.3)
            assert got_concept == want_concept
        got = katara_violations(kb, table, alignment)
        with reference_kernels():
            want = katara_violations(kb, table, alignment)
        assert got == want


# ----------------------------------------------------------------------
# Constraints: FD and DC checking
# ----------------------------------------------------------------------
class TestConstraintKernels:
    @given(small_tables(min_categorical=2))
    @settings(max_examples=40, deadline=None)
    def test_fd_violations_and_repairs_match_reference(self, table):
        fd = FunctionalDependency(("c0",), "c1")
        assert fd.violations(table) == reference_fd_violations(fd, table)
        assert fd.majority_repairs(table) == reference_fd_majority_repairs(
            fd, table
        )

    @given(small_tables(min_categorical=1), st.sampled_from([6, 2_000_000]))
    @settings(max_examples=40, deadline=None)
    def test_dc_violations_match_reference(self, table, max_pairs):
        has_numeric = "n0" in table.schema
        constraints = []
        if has_numeric:
            constraints.append(
                DenialConstraint([Predicate("n0", ">", constant=0.0)])
            )
            constraints.append(
                DenialConstraint(
                    [
                        Predicate("c0", "==", right_attr="c0"),
                        Predicate("n0", ">", right_attr="n0"),
                    ],
                    binary=True,
                )
            )
        constraints.append(
            DenialConstraint(
                [Predicate("c0", "==", right_attr="c0")], binary=True
            )
        )
        for dc in constraints:
            got = dc.violations(table, max_pairs=max_pairs)
            if dc.binary:
                want = reference_binary_violations(dc, table, max_pairs)
            else:
                want = reference_unary_violations(dc, table)
            assert got == want, str(dc)


# ----------------------------------------------------------------------
# Repairs: Baran and HoloClean candidate scoring
# ----------------------------------------------------------------------
@st.composite
def repair_cases(draw):
    clean = draw(small_tables(min_rows=4, max_rows=14, min_categorical=1))
    dirty = clean.copy()
    for _ in range(draw(st.integers(0, 5))):
        row = draw(st.integers(0, clean.n_rows - 1))
        column = draw(st.sampled_from(list(clean.column_names)))
        if clean.schema.kind_of(column) == NUMERICAL:
            dirty.set_cell(row, column, draw(numeric_cell))
        else:
            dirty.set_cell(row, column, draw(categorical_cell))
    detections = draw(detection_sets(dirty))
    return clean, dirty, detections


class TestRepairKernels:
    @given(repair_cases(), st.sampled_from([1, 4]))
    @settings(max_examples=12, deadline=None)
    def test_baran_byte_identical_to_reference(self, case, budget):
        clean, dirty, detections = case
        got = BaranRepair(label_budget=budget)._repair(
            CleaningContext(dirty=dirty, clean=clean, seed=7),
            set(detections),
        )
        with reference_kernels():
            want = BaranRepair(label_budget=budget)._repair(
                CleaningContext(dirty=dirty, clean=clean, seed=7),
                set(detections),
            )
        assert _strict_cell_diff(got, want) == []

    @given(repair_cases(), st.booleans())
    @settings(max_examples=12, deadline=None)
    def test_holoclean_byte_identical_to_reference(self, case, learn):
        clean, dirty, detections = case
        cats = [
            c
            for c in dirty.column_names
            if dirty.schema.kind_of(c) == CATEGORICAL
        ]
        fds = (
            [FunctionalDependency((cats[0],), cats[1])]
            if len(cats) >= 2
            else []
        )
        vectorized = HoloCleanRepair(learn_weights=learn)
        got = vectorized._repair(
            CleaningContext(dirty=dirty, fds=fds, seed=3), set(detections)
        )
        reference = HoloCleanRepair(learn_weights=learn)
        with reference_kernels():
            want = reference._repair(
                CleaningContext(dirty=dirty, fds=fds, seed=3),
                set(detections),
            )
        assert _strict_cell_diff(got, want) == []
        if vectorized.learned_weights_ is None:
            assert reference.learned_weights_ is None
        else:
            assert np.array_equal(
                np.asarray(vectorized.learned_weights_),
                np.asarray(reference.learned_weights_),
            )


# ----------------------------------------------------------------------
# End to end: checkpoint stores byte-identical across kernel choice,
# worker count, and block size
# ----------------------------------------------------------------------
class _StepClock:
    def __init__(self, tick: float = 2.0 ** -10):
        self.ticks = 0
        self.tick = tick

    def __call__(self) -> float:
        self.ticks += 1
        return self.ticks * self.tick


NO_SLEEP = lambda seconds: None  # noqa: E731


def _dataset():
    return generate("SmartFactory", n_rows=120, seed=3)


def _detectors():
    return [
        MVDetector(),
        DBoostDetector(),
        KeyCollisionDetector(),
        NadeefDetector(),
        ZeroERDetector(max_pairs=4_000),
    ]


def _store_canonical(store_path, drop_runtime=False) -> bytes:
    with SuiteCheckpoint.open(store_path, "run", resume=True) as ckpt:
        units = sorted(ckpt.completed_units())
        payload = {unit: ckpt.get(unit) for unit in units}
    if drop_runtime:
        # For blocked-vs-unblocked comparisons: a blocked run also
        # checkpoints its per-block sub-units (``...@rows<lo>-<hi>``),
        # and times each block separately, so the deterministic clock is
        # read a different number of times than a whole-table run.  The
        # final per-detector units must still match in everything but
        # the honest runtime total.
        payload = {
            unit: value
            for unit, value in payload.items()
            if "@rows" not in unit
        }
        for unit in payload.values():
            if isinstance(unit, dict):
                unit.pop("runtime_seconds", None)
    return json.dumps(payload, sort_keys=True).encode()


def _detection_store(
    store_path, *, reference=False, executor=None, block_rows=None,
    drop_runtime=False,
) -> bytes:
    dataset = _dataset()
    with SuiteCheckpoint.open(store_path, "run", resume=False) as ckpt:
        kwargs = dict(
            checkpoint=ckpt,
            clock=_StepClock(),
            sleep=NO_SLEEP,
            executor=executor,
            block_rows=block_rows,
        )
        if reference:
            with reference_kernels():
                run_detection_suite(dataset, _detectors(), **kwargs)
        else:
            run_detection_suite(dataset, _detectors(), **kwargs)
    return _store_canonical(store_path, drop_runtime=drop_runtime)


class TestCheckpointByteIdentity:
    def test_detection_stores_identical_across_kernels_and_workers(
        self, tmp_path
    ):
        reference = _detection_store(
            str(tmp_path / "ref.sqlite"), reference=True
        )
        vectorized = _detection_store(str(tmp_path / "vec.sqlite"))
        assert vectorized == reference
        pooled = _detection_store(
            str(tmp_path / "pool.sqlite"), executor=ProcessPoolExecutor(2)
        )
        assert pooled == reference

    def test_blocked_stores_identical_across_kernels(self, tmp_path):
        # Same block size, reference vs vectorized kernels: every byte
        # of the store (including per-block runtime accounting) agrees.
        blocked_ref = _detection_store(
            str(tmp_path / "bref.sqlite"), reference=True, block_rows=37
        )
        blocked_vec = _detection_store(
            str(tmp_path / "bvec.sqlite"), block_rows=37
        )
        assert blocked_vec == blocked_ref

    def test_blocked_equals_unblocked_up_to_runtime(self, tmp_path):
        whole = _detection_store(
            str(tmp_path / "whole.sqlite"), drop_runtime=True
        )
        blocked = _detection_store(
            str(tmp_path / "blk.sqlite"), block_rows=37, drop_runtime=True
        )
        assert blocked == whole

    def test_repair_stores_identical_across_kernels_and_workers(
        self, tmp_path
    ):
        dataset = _dataset()
        detections = {
            "MV": MVDetector()._detect(dataset.context(seed=0))
        }

        def repair_store(store_path, *, reference=False, executor=None):
            with SuiteCheckpoint.open(store_path, "run", resume=False) as c:
                kwargs = dict(
                    checkpoint=c,
                    clock=_StepClock(),
                    sleep=NO_SLEEP,
                    executor=executor,
                )
                methods = [
                    BaranRepair(label_budget=5),
                    HoloCleanRepair(),
                ]
                if reference:
                    with reference_kernels():
                        run_repair_suite(
                            dataset, detections, methods, **kwargs
                        )
                else:
                    run_repair_suite(dataset, detections, methods, **kwargs)
            return _store_canonical(store_path)

        reference = repair_store(str(tmp_path / "ref.sqlite"), reference=True)
        vectorized = repair_store(str(tmp_path / "vec.sqlite"))
        assert vectorized == reference
        pooled = repair_store(
            str(tmp_path / "pool.sqlite"), executor=ProcessPoolExecutor(2)
        )
        assert pooled == reference
