"""Tests for the CLI and the automatic signal generation helper."""

import numpy as np
import pytest

from repro.benchmark.signals import (
    AutoSignals,
    auto_signals,
    infer_column_pattern,
    infer_key_columns,
)
from repro.cli import main
from repro.context import CleaningContext
from repro.datagen import generate
from repro.dataset import CATEGORICAL, NUMERICAL, Schema, Table
from repro.detectors import NadeefDetector


class TestAutoSignals:
    def test_discovers_fds_on_beers(self):
        dataset = generate("Beers", n_rows=200, seed=0)
        signals = auto_signals(dataset.clean)
        fd_strings = {str(fd) for fd in signals.fds}
        assert any("city -> state" in s for s in fd_strings)

    def test_patterns_cover_clean_flag_dirty(self):
        dataset = generate("Beers", n_rows=200, seed=1)
        signals = auto_signals(dataset.clean)
        state_patterns = [p for p in signals.patterns if p.column == "state"]
        assert state_patterns
        # The inferred pattern accepts every clean value...
        assert state_patterns[0].violations(dataset.clean) == set()
        # ...and the dirty version has some violating cells (typos).
        dirty_violations = state_patterns[0].violations(dataset.dirty)
        true_errors = {
            c for c in dirty_violations if c in dataset.error_cells
        }
        assert len(true_errors) >= len(dirty_violations) * 0.5

    def test_key_columns(self):
        schema = Schema.from_pairs([("id", CATEGORICAL), ("grp", CATEGORICAL)])
        table = Table(
            schema,
            {
                "id": [f"k{i}" for i in range(50)],
                "grp": [f"g{i % 3}" for i in range(50)],
            },
        )
        assert infer_key_columns(table) == ["id"]

    def test_auto_signals_drive_nadeef(self):
        dataset = generate("Beers", n_rows=200, seed=2)
        signals = auto_signals(dataset.clean)
        context = CleaningContext(
            dirty=dataset.dirty,
            fds=signals.fds,
            patterns=signals.patterns,
        )
        detected = NadeefDetector().detect(context)
        assert detected.n_detected > 0
        # Auto-generated rules reach useful precision.
        hits = len(set(detected.cells) & dataset.error_cells)
        assert hits / detected.n_detected > 0.3

    def test_free_text_column_gets_no_pattern(self):
        rng = np.random.default_rng(0)
        alphabet = "abcdefghijklmnop .,-"
        schema = Schema.from_pairs([("txt", CATEGORICAL)])
        table = Table(
            schema,
            {
                "txt": [
                    "".join(
                        alphabet[int(rng.integers(len(alphabet)))]
                        for _ in range(int(rng.integers(3, 25)))
                    )
                    for _ in range(60)
                ]
            },
        )
        assert infer_column_pattern(table, "txt") is None

    def test_short_column_gets_no_pattern(self):
        schema = Schema.from_pairs([("c", CATEGORICAL)])
        table = Table(schema, {"c": ["x", "y"]})
        assert infer_column_pattern(table, "c") is None


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Beers" in out and "Soccer" in out

    def test_detect(self, capsys):
        assert main(["detect", "Nasa", "--rows", "120"]) == 0
        out = capsys.readouterr().out
        assert "detection" in out
        assert "IoU" in out

    def test_repair(self, capsys):
        assert main(["repair", "Nasa", "--rows", "120"]) == 0
        out = capsys.readouterr().out
        assert "repair grid" in out
        assert "MVD+GT" in out or "MaxEntropy+GT" in out

    def test_model(self, capsys):
        assert main(["model", "Nasa", "--rows", "150", "--model", "Ridge",
                     "--seeds", "3"]) == 0
        out = capsys.readouterr().out
        assert "Wilcoxon" in out
        assert "S1" in out and "S4" in out

    def test_model_no_task(self, capsys):
        assert main(["model", "Soccer", "--rows", "100"]) == 2

    def test_bad_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["detect", "NotADataset"])

    def test_detect_prints_runtime_panel(self, capsys):
        assert main(["detect", "Nasa", "--rows", "120"]) == 0
        out = capsys.readouterr().out
        assert "runtime seconds per detector" in out
        assert "total" in out


class TestCliObservability:
    def test_quiet_suppresses_report_keeps_exit_code(self, capsys):
        assert main(["detect", "Nasa", "--rows", "120", "--quiet"]) == 0
        assert capsys.readouterr().out == ""
        assert main(["list", "-q"]) == 0
        assert capsys.readouterr().out == ""

    def test_quiet_does_not_mask_usage_errors(self, capsys):
        assert main(["model", "Soccer", "--rows", "100", "--quiet"]) == 2

    def test_verbose_and_quiet_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(["detect", "Nasa", "-q", "-v"])

    def test_verbose_prints_telemetry_summary(self, capsys):
        assert main(["detect", "Nasa", "--rows", "120", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "telemetry: counters" in out
        assert "units.ok" in out

    def test_events_ledger_records_the_run(self, tmp_path, capsys):
        from repro.observability import read_ledger
        from repro.observability.ledger import (
            RUN_FINISHED,
            RUN_STARTED,
            UNIT_FINALIZED,
        )

        events = tmp_path / "events.jsonl"
        assert main(
            ["detect", "Nasa", "--rows", "120", "--workers", "2",
             "--events", str(events), "-q"]
        ) == 0
        capsys.readouterr()
        (started,) = read_ledger(events, event=RUN_STARTED)
        assert started["command"] == "detect"
        assert started["workers"] == 2
        (finished,) = read_ledger(events, event=RUN_FINISHED)
        assert finished["status"] == "ok"
        assert read_ledger(events, event=UNIT_FINALIZED)

    def test_trace_subcommand_round_trips_the_ledger(self, tmp_path, capsys):
        import json

        events = tmp_path / "events.jsonl"
        assert main(
            ["detect", "Nasa", "--rows", "120", "--events", str(events),
             "-q"]
        ) == 0
        capsys.readouterr()
        out_path = tmp_path / "trace.json"
        assert main(["trace", str(events), "--out", str(out_path)]) == 0
        trace = json.loads(out_path.read_text())
        categories = {
            e["cat"] for e in trace["traceEvents"] if e["ph"] == "X"
        }
        assert {"suite", "stage", "unit", "attempt"} <= categories

        # Without --out the JSON is the stdout deliverable.
        capsys.readouterr()
        assert main(["trace", str(events)]) == 0
        stdout_trace = json.loads(capsys.readouterr().out)
        assert stdout_trace == trace

    def test_trace_rejects_missing_or_corrupt_ledger(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "absent.jsonl")]) == 4
        assert "cannot read ledger" in capsys.readouterr().err
        corrupt = tmp_path / "corrupt.jsonl"
        corrupt.write_text("not json\n")
        assert main(["trace", str(corrupt)]) == 4
        assert "cannot read ledger" in capsys.readouterr().err


class TestCliExitCodes:
    """The documented exit-code taxonomy: 2 usage, 3 malformed config,
    4 missing/unopenable path, 5 service unreachable."""

    def test_submit_without_destination_is_usage_error(self, capsys):
        assert main(["submit", "Nasa", "--kind", "detect"]) == 2
        assert "--inline or --url" in capsys.readouterr().err

    def test_submit_malformed_options_json(self, capsys):
        assert main(
            ["submit", "Nasa", "--kind", "detect", "--inline",
             "--options", "{not json"]
        ) == 3
        assert "not valid JSON" in capsys.readouterr().err

    def test_submit_non_object_options(self, capsys):
        assert main(
            ["submit", "Nasa", "--kind", "detect", "--inline",
             "--options", "[1, 2]"]
        ) == 3
        assert "JSON object" in capsys.readouterr().err

    def test_submit_invalid_spec_config(self, capsys):
        assert main(
            ["submit", "Nasa", "--kind", "detect", "--inline",
             "--options", '{"detectors": ["NoSuchDetector"]}']
        ) == 3
        assert "malformed job config" in capsys.readouterr().err

    def test_submit_unopenable_store_path(self, tmp_path, capsys):
        assert main(
            ["submit", "Nasa", "--kind", "detect", "--inline",
             "--store", str(tmp_path / "no" / "such" / "dir" / "s.sqlite")]
        ) == 4
        assert capsys.readouterr().err.startswith("repro submit:")

    def test_submit_unreachable_service(self, capsys):
        assert main(
            ["submit", "Nasa", "--kind", "detect",
             "--url", "http://127.0.0.1:9", "--timeout", "2"]
        ) == 5
        assert "unreachable" in capsys.readouterr().err

    def test_jobs_unreachable_service(self, capsys):
        assert main(["jobs", "--url", "http://127.0.0.1:9"]) == 5
        assert "unreachable" in capsys.readouterr().err

    def test_detect_unopenable_events_path(self, tmp_path, capsys):
        assert main(
            ["detect", "Nasa", "--rows", "60", "-q",
             "--events", str(tmp_path / "no" / "such" / "events.jsonl")]
        ) == 4

    def test_inline_submit_is_byte_deterministic(self, tmp_path, capsys):
        argv = [
            "submit", "Nasa", "--kind", "detect", "--rows", "60",
            "--seed", "3", "--options", '{"detectors": ["MVD"]}',
            "--inline", "--quiet",
            "--store", str(tmp_path / "store.sqlite"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        import json

        payload = json.loads(first)
        assert payload["spec"]["dataset"] == "Nasa"
