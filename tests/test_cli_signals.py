"""Tests for the CLI and the automatic signal generation helper."""

import numpy as np
import pytest

from repro.benchmark.signals import (
    AutoSignals,
    auto_signals,
    infer_column_pattern,
    infer_key_columns,
)
from repro.cli import main
from repro.context import CleaningContext
from repro.datagen import generate
from repro.dataset import CATEGORICAL, NUMERICAL, Schema, Table
from repro.detectors import NadeefDetector


class TestAutoSignals:
    def test_discovers_fds_on_beers(self):
        dataset = generate("Beers", n_rows=200, seed=0)
        signals = auto_signals(dataset.clean)
        fd_strings = {str(fd) for fd in signals.fds}
        assert any("city -> state" in s for s in fd_strings)

    def test_patterns_cover_clean_flag_dirty(self):
        dataset = generate("Beers", n_rows=200, seed=1)
        signals = auto_signals(dataset.clean)
        state_patterns = [p for p in signals.patterns if p.column == "state"]
        assert state_patterns
        # The inferred pattern accepts every clean value...
        assert state_patterns[0].violations(dataset.clean) == set()
        # ...and the dirty version has some violating cells (typos).
        dirty_violations = state_patterns[0].violations(dataset.dirty)
        true_errors = {
            c for c in dirty_violations if c in dataset.error_cells
        }
        assert len(true_errors) >= len(dirty_violations) * 0.5

    def test_key_columns(self):
        schema = Schema.from_pairs([("id", CATEGORICAL), ("grp", CATEGORICAL)])
        table = Table(
            schema,
            {
                "id": [f"k{i}" for i in range(50)],
                "grp": [f"g{i % 3}" for i in range(50)],
            },
        )
        assert infer_key_columns(table) == ["id"]

    def test_auto_signals_drive_nadeef(self):
        dataset = generate("Beers", n_rows=200, seed=2)
        signals = auto_signals(dataset.clean)
        context = CleaningContext(
            dirty=dataset.dirty,
            fds=signals.fds,
            patterns=signals.patterns,
        )
        detected = NadeefDetector().detect(context)
        assert detected.n_detected > 0
        # Auto-generated rules reach useful precision.
        hits = len(set(detected.cells) & dataset.error_cells)
        assert hits / detected.n_detected > 0.3

    def test_free_text_column_gets_no_pattern(self):
        rng = np.random.default_rng(0)
        alphabet = "abcdefghijklmnop .,-"
        schema = Schema.from_pairs([("txt", CATEGORICAL)])
        table = Table(
            schema,
            {
                "txt": [
                    "".join(
                        alphabet[int(rng.integers(len(alphabet)))]
                        for _ in range(int(rng.integers(3, 25)))
                    )
                    for _ in range(60)
                ]
            },
        )
        assert infer_column_pattern(table, "txt") is None

    def test_short_column_gets_no_pattern(self):
        schema = Schema.from_pairs([("c", CATEGORICAL)])
        table = Table(schema, {"c": ["x", "y"]})
        assert infer_column_pattern(table, "c") is None


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Beers" in out and "Soccer" in out

    def test_detect(self, capsys):
        assert main(["detect", "Nasa", "--rows", "120"]) == 0
        out = capsys.readouterr().out
        assert "detection" in out
        assert "IoU" in out

    def test_repair(self, capsys):
        assert main(["repair", "Nasa", "--rows", "120"]) == 0
        out = capsys.readouterr().out
        assert "repair grid" in out
        assert "MVD+GT" in out or "MaxEntropy+GT" in out

    def test_model(self, capsys):
        assert main(["model", "Nasa", "--rows", "150", "--model", "Ridge",
                     "--seeds", "3"]) == 0
        out = capsys.readouterr().out
        assert "Wilcoxon" in out
        assert "S1" in out and "S4" in out

    def test_model_no_task(self, capsys):
        assert main(["model", "Soccer", "--rows", "100"]) == 2

    def test_bad_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["detect", "NotADataset"])
