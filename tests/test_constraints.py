"""Tests for denial constraints, FDs, patterns, and FD discovery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import (
    ColumnPattern,
    DenialConstraint,
    FunctionalDependency,
    Predicate,
    discover_fds,
)
from repro.constraints.discovery import g3_error
from repro.dataset import CATEGORICAL, NUMERICAL, Schema, Table


@pytest.fixture
def city_table():
    schema = Schema.from_pairs(
        [("zip", CATEGORICAL), ("city", CATEGORICAL), ("pop", NUMERICAL)]
    )
    return Table(
        schema,
        {
            "zip": ["10115", "10115", "80331", "80331", "20095"],
            "city": ["berlin", "berlin", "munich", "MUNICH-X", "hamburg"],
            "pop": [3.6, 3.6, 1.5, 1.5, 1.8],
        },
    )


class TestPredicate:
    def test_constant_comparison(self):
        p = Predicate("pop", ">", constant=2.0)
        assert p.holds({"pop": 3.6})
        assert not p.holds({"pop": 1.5})

    def test_missing_never_holds(self):
        p = Predicate("pop", ">", constant=2.0)
        assert not p.holds({"pop": None})
        assert not p.holds({"pop": ""})

    def test_cross_tuple(self):
        p = Predicate("zip", "==", "zip")
        assert p.holds({"zip": "10115"}, {"zip": "10115"})
        assert not p.holds({"zip": "10115"}, {"zip": "80331"})

    def test_numeric_op_on_text_never_holds(self):
        p = Predicate("pop", "<", constant=5)
        assert not p.holds({"pop": "abc"})

    def test_string_vs_numeric_equality(self):
        p = Predicate("pop", "==", constant=3.6)
        assert p.holds({"pop": "3.6"})

    def test_validation(self):
        with pytest.raises(ValueError):
            Predicate("a", "~", constant=1)
        with pytest.raises(ValueError):
            Predicate("a", "==")
        with pytest.raises(ValueError):
            Predicate("a", "==", right_attr="b", constant=1)
        with pytest.raises(ValueError):
            Predicate("a", "==", right_attr="b", right_tuple="t3")


class TestDenialConstraint:
    def test_unary_violations(self, city_table):
        dc = DenialConstraint([Predicate("pop", ">", constant=3.0)])
        cells = dc.violations(city_table)
        assert cells == {(0, "pop"), (1, "pop")}

    def test_binary_fd_style(self, city_table):
        dc = DenialConstraint(
            [Predicate("zip", "==", "zip"), Predicate("city", "!=", "city")],
            binary=True,
        )
        cells = dc.violations(city_table)
        rows = {r for r, _ in cells}
        assert rows == {2, 3}

    def test_binary_no_violations(self, city_table):
        dc = DenialConstraint(
            [Predicate("zip", "==", "zip"), Predicate("pop", "!=", "pop")],
            binary=True,
        )
        assert dc.violations(city_table) == set()

    def test_violating_row_pairs(self, city_table):
        dc = DenialConstraint(
            [Predicate("zip", "==", "zip"), Predicate("city", "!=", "city")],
            binary=True,
        )
        assert dc.violating_row_pairs(city_table) == [(2, 3)]
        unary = DenialConstraint([Predicate("pop", ">", constant=0)])
        with pytest.raises(ValueError):
            unary.violating_row_pairs(city_table)

    def test_needs_predicates(self):
        with pytest.raises(ValueError):
            DenialConstraint([])

    def test_conjunction_semantics(self, city_table):
        dc = DenialConstraint(
            [
                Predicate("pop", ">", constant=1.0),
                Predicate("city", "==", constant="hamburg"),
            ]
        )
        cells = dc.violations(city_table)
        assert {r for r, _ in cells} == {4}


class TestFunctionalDependency:
    def test_violations_flag_minority(self, city_table):
        fd = FunctionalDependency(("zip",), "city")
        cells = fd.violations(city_table)
        # zip 80331 has 'munich' vs 'MUNICH-X' tie -> both flagged.
        assert cells == {(2, "city"), (3, "city")}

    def test_majority_repairs(self):
        schema = Schema.from_pairs([("k", CATEGORICAL), ("v", CATEGORICAL)])
        table = Table(
            schema, {"k": ["a", "a", "a"], "v": ["x", "x", "WRONG"]}
        )
        fd = FunctionalDependency(("k",), "v")
        assert fd.violations(table) == {(2, "v")}
        assert fd.majority_repairs(table) == {(2, "v"): "x"}

    def test_holds_on_clean(self, city_table):
        fixed = city_table.copy()
        fixed.set_cell(3, "city", "munich")
        assert FunctionalDependency(("zip",), "city").holds_on(fixed)

    def test_missing_lhs_skipped(self):
        schema = Schema.from_pairs([("k", CATEGORICAL), ("v", CATEGORICAL)])
        table = Table(schema, {"k": [None, None], "v": ["x", "y"]})
        assert FunctionalDependency(("k",), "v").violations(table) == set()

    def test_to_denial_constraint_equivalent(self, city_table):
        fd = FunctionalDependency(("zip",), "city")
        dc = fd.to_denial_constraint()
        assert dc.binary
        dc_rows = {r for r, _ in dc.violations(city_table)}
        fd_rows = {r for r, _ in fd.violations(city_table)}
        assert fd_rows <= dc_rows

    def test_validation(self):
        with pytest.raises(ValueError):
            FunctionalDependency((), "x")
        with pytest.raises(ValueError):
            FunctionalDependency(("x",), "x")

    def test_string_lhs_promoted(self):
        fd = FunctionalDependency("zip", "city")
        assert fd.lhs == ("zip",)
        assert str(fd) == "zip -> city"


class TestPatterns:
    def test_violations(self, city_table):
        pattern = ColumnPattern("zip", r"\d{5}")
        dirty = city_table.copy()
        dirty.set_cell(0, "zip", "1O115")  # letter O typo
        assert pattern.violations(dirty) == {(0, "zip")}

    def test_missing_values_pass(self, city_table):
        dirty = city_table.copy()
        dirty.set_cell(0, "zip", None)
        assert ColumnPattern("zip", r"\d{5}").violations(dirty) == set()

    def test_matches_helper(self):
        pattern = ColumnPattern("x", r"[a-z]+")
        assert pattern.matches("abc")
        assert not pattern.matches("ABC")
        assert pattern.matches(None)

    def test_bad_regex_fails_fast(self):
        with pytest.raises(Exception):
            ColumnPattern("x", r"([")


class TestDiscovery:
    def test_g3_exact_fd(self, city_table):
        fixed = city_table.copy()
        fixed.set_cell(3, "city", "munich")
        assert g3_error(fixed, ("zip",), "city") == 0.0

    def test_g3_with_noise(self, city_table):
        assert g3_error(city_table, ("zip",), "city") == pytest.approx(0.2)

    def test_discovers_planted_fd(self):
        rng = np.random.default_rng(0)
        n = 200
        zips = [f"{rng.integers(10, 20)}xxx" for _ in range(n)]
        city_of = {z: f"city_{z[:2]}" for z in set(zips)}
        schema = Schema.from_pairs(
            [("zip", CATEGORICAL), ("city", CATEGORICAL), ("noise", CATEGORICAL)]
        )
        table = Table(
            schema,
            {
                "zip": zips,
                "city": [city_of[z] for z in zips],
                "noise": [str(rng.integers(0, 50)) for _ in range(n)],
            },
        )
        fds = discover_fds(table, max_lhs=1)
        assert any(fd.lhs == ("zip",) and fd.rhs == "city" for fd in fds)
        # noise is not determined by zip.
        assert not any(fd.rhs == "noise" for fd in fds)

    def test_minimality(self):
        schema = Schema.from_pairs(
            [("a", CATEGORICAL), ("b", CATEGORICAL), ("c", CATEGORICAL)]
        )
        rows = [("a%d" % (i % 4), "b%d" % (i % 4), "c%d" % (i % 5)) for i in range(40)]
        table = Table.from_rows(schema, rows)
        fds = discover_fds(table, max_lhs=2)
        for fd in fds:
            if fd.rhs == "b" and ("a",) != fd.lhs:
                # a -> b holds, so no superset determinant for b is allowed.
                assert "a" not in fd.lhs

    def test_validation(self, city_table):
        with pytest.raises(ValueError):
            discover_fds(city_table, max_lhs=0)
        with pytest.raises(ValueError):
            discover_fds(city_table, noise_tolerance=1.0)

    @given(st.integers(min_value=2, max_value=30), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_g3_bounds_property(self, n_rows, seed):
        rng = np.random.default_rng(seed)
        schema = Schema.from_pairs([("a", CATEGORICAL), ("b", CATEGORICAL)])
        table = Table(
            schema,
            {
                "a": [str(rng.integers(0, 3)) for _ in range(n_rows)],
                "b": [str(rng.integers(0, 3)) for _ in range(n_rows)],
            },
        )
        error = g3_error(table, ("a",), "b")
        assert 0.0 <= error < 1.0
