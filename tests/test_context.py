"""Tests for the CleaningContext (oracle simulation and signal wiring)."""

import numpy as np
import pytest

from repro.constraints import DenialConstraint, FunctionalDependency, Predicate
from repro.context import CleaningContext
from repro.dataset import CATEGORICAL, NUMERICAL, Schema, Table


@pytest.fixture
def tables():
    schema = Schema.from_pairs([("x", NUMERICAL), ("c", CATEGORICAL)])
    clean = Table(schema, {"x": [1.0, 2.0, 3.0], "c": ["a", "b", "c"]})
    dirty = clean.copy()
    dirty.set_cell(0, "x", 99.0)
    dirty.set_cell(2, "c", None)
    return clean, dirty


class TestOracle:
    def test_oracle_is_dirty(self, tables):
        clean, dirty = tables
        ctx = CleaningContext(dirty=dirty, clean=clean)
        assert ctx.oracle_is_dirty((0, "x"))
        assert ctx.oracle_is_dirty((2, "c"))
        assert not ctx.oracle_is_dirty((1, "x"))

    def test_oracle_value(self, tables):
        clean, dirty = tables
        ctx = CleaningContext(dirty=dirty, clean=clean)
        assert ctx.oracle_value((0, "x")) == 1.0
        assert ctx.oracle_value((2, "c")) == "c"

    def test_oracle_without_ground_truth(self, tables):
        _, dirty = tables
        ctx = CleaningContext(dirty=dirty)
        assert not ctx.has_ground_truth
        with pytest.raises(RuntimeError):
            ctx.oracle_is_dirty((0, "x"))
        with pytest.raises(RuntimeError):
            ctx.oracle_value((0, "x"))

    def test_numeric_string_equivalence(self, tables):
        clean, dirty = tables
        dirty.set_cell(1, "x", "2.0")  # string repr of the clean value
        ctx = CleaningContext(dirty=dirty, clean=clean)
        assert not ctx.oracle_is_dirty((1, "x"))


class TestSignals:
    def test_all_constraints_includes_fd_encodings(self, tables):
        clean, dirty = tables
        fd = FunctionalDependency(("c",), "x")
        dc = DenialConstraint([Predicate("x", ">", constant=10.0)])
        ctx = CleaningContext(dirty=dirty, fds=[fd], constraints=[dc])
        combined = ctx.all_constraints()
        assert len(combined) == 2
        assert any(c.binary for c in combined)
        assert any(not c.binary for c in combined)

    def test_rng_salt(self, tables):
        _, dirty = tables
        ctx = CleaningContext(dirty=dirty, seed=5)
        a = ctx.rng(1).integers(0, 10**9)
        b = ctx.rng(1).integers(0, 10**9)
        c = ctx.rng(2).integers(0, 10**9)
        assert a == b  # same salt reproduces
        assert a != c  # different salt diverges
