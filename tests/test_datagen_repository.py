"""Tests for the dataset generators and the SQLite repository."""

import numpy as np
import pytest

from repro.datagen import DATASET_NAMES, dataset_spec, generate, table4_rows
from repro.repository import DataRepository, ResultsStore
from repro.repository.store import DIRTY, GROUND_TRUTH, REPAIRED, ResultRecord


class TestGenerators:
    def test_fourteen_datasets(self):
        assert len(DATASET_NAMES) == 14

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_generate_small(self, name):
        dataset = generate(name, n_rows=80, seed=0)
        assert dataset.clean.n_rows == 80
        assert dataset.dirty.n_rows == 80
        assert dataset.clean.schema == dataset.dirty.schema
        # Mask consistency: recorded error cells equal the actual diff.
        assert dataset.error_cells == dataset.clean.diff_cells(dataset.dirty)
        assert dataset.error_cells, f"{name} generated no errors"

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_schema_shape_matches_table4_mix(self, name):
        dataset = generate(name, n_rows=60, seed=1)
        schema = dataset.clean.schema
        spec = dataset_spec(name)
        assert dataset.task == spec.task
        assert len(schema.numerical_names) >= 1
        if dataset.task == "classification":
            assert dataset.target in schema

    def test_error_rate_tracks_table4(self):
        # Error rates should be within a factor-2 band of Table 4's.
        for name in ("Beers", "SmartFactory", "Water", "Citation"):
            dataset = generate(name, n_rows=200, seed=2)
            expected = dataset_spec(name).error_rate
            assert 0.3 * expected <= dataset.error_rate() <= 2.0 * expected, (
                name, dataset.error_rate(), expected
            )

    def test_reproducible(self):
        a = generate("Beers", n_rows=100, seed=5)
        b = generate("Beers", n_rows=100, seed=5)
        assert a.dirty == b.dirty
        assert a.error_cells == b.error_cells

    def test_different_seeds_differ(self):
        a = generate("Nasa", n_rows=100, seed=1)
        b = generate("Nasa", n_rows=100, seed=2)
        assert a.dirty != b.dirty

    def test_beers_signals(self):
        dataset = generate("Beers", n_rows=150, seed=3)
        assert dataset.fds
        assert dataset.patterns
        assert dataset.knowledge_base is not None
        # The FDs hold on the clean version.
        for fd in dataset.fds:
            assert fd.holds_on(dataset.clean), str(fd)

    def test_citation_has_duplicates_and_mislabels(self):
        dataset = generate("Citation", n_rows=150, seed=4)
        assert "duplicate" in dataset.error_types
        assert "mislabel" in dataset.error_types

    def test_context_wiring(self):
        dataset = generate("Beers", n_rows=100, seed=6)
        ctx = dataset.context(seed=9)
        assert ctx.dirty is dataset.dirty
        assert ctx.clean is dataset.clean
        assert ctx.fds == dataset.fds
        assert ctx.seed == 9
        blind = dataset.context(with_ground_truth=False)
        assert blind.clean is None

    def test_summary_row(self):
        dataset = generate("Water", n_rows=100, seed=7)
        row = dataset.summary_row()
        assert row["dataset"] == "Water"
        assert row["rows"] == 100
        assert row["task"] == "clustering"

    def test_table4_rows(self):
        assert table4_rows("Adult") == 45223
        assert table4_rows("Printer3D") == 50

    def test_validation(self):
        with pytest.raises(KeyError):
            generate("Nope")
        with pytest.raises(ValueError):
            generate("Beers", n_rows=5)


class TestDataRepository:
    def test_round_trip(self):
        dataset = generate("Nasa", n_rows=60, seed=0)
        with DataRepository() as repo:
            repo.save_version("Nasa", GROUND_TRUTH, dataset.clean)
            repo.save_version("Nasa", DIRTY, dataset.dirty)
            loaded_clean = repo.load_version("Nasa", GROUND_TRUTH)
            loaded_dirty = repo.load_version("Nasa", DIRTY)
        assert loaded_clean.diff_cells(dataset.clean) == set()
        assert loaded_dirty.diff_cells(dataset.dirty) == set()

    def test_variants(self):
        dataset = generate("Nasa", n_rows=40, seed=1)
        with DataRepository() as repo:
            repo.save_version("Nasa", REPAIRED, dataset.clean, variant="GT")
            repo.save_version("Nasa", REPAIRED, dataset.dirty, variant="none")
            versions = repo.list_versions("Nasa")
            assert ("Nasa", REPAIRED, "GT") in versions
            assert ("Nasa", REPAIRED, "none") in versions
            repo.delete_version("Nasa", REPAIRED, "none")
            assert len(repo.list_versions("Nasa")) == 1

    def test_missing_version_raises(self):
        with DataRepository() as repo:
            with pytest.raises(KeyError):
                repo.load_version("ghost", DIRTY)

    def test_invalid_kind(self):
        dataset = generate("Nasa", n_rows=40, seed=2)
        with DataRepository() as repo:
            with pytest.raises(ValueError):
                repo.save_version("Nasa", "draft", dataset.clean)

    def test_overwrite(self):
        dataset = generate("Nasa", n_rows=40, seed=3)
        with DataRepository() as repo:
            repo.save_version("Nasa", DIRTY, dataset.dirty)
            repo.save_version("Nasa", DIRTY, dataset.clean)  # replace
            loaded = repo.load_version("Nasa", DIRTY)
            assert loaded.diff_cells(dataset.clean) == set()

    def test_numpy_scalar_cells_round_trip_as_numbers(self):
        # np.int64 used to fall through to str(), so integer cells came
        # back as strings after a save/load cycle.
        import numpy as np

        from repro.dataset import CATEGORICAL, NUMERICAL, Schema, Table
        from repro.repository.store import encode_cell_value

        assert encode_cell_value(np.int64(7)) == 7
        assert isinstance(encode_cell_value(np.int64(7)), int)
        assert encode_cell_value(np.float32(1.5)) == 1.5
        assert isinstance(encode_cell_value(np.float64(1.5)), float)
        assert encode_cell_value("label") == "label"
        assert encode_cell_value(np.float64("nan")) is None

        schema = Schema.from_pairs([("n", NUMERICAL), ("c", CATEGORICAL)])
        table = Table(
            schema,
            {
                "n": [np.int64(1), np.float64(2.5), np.int32(3)],
                "c": ["a", "b", "c"],
            },
        )
        with DataRepository() as repo:
            repo.save_version("np", GROUND_TRUTH, table)
            loaded = repo.load_version("np", GROUND_TRUTH)
        values = list(loaded.column("n"))
        assert values == [1, 2.5, 3]
        assert not any(isinstance(v, str) for v in values)


class TestResultsStore:
    def test_add_and_query(self):
        with ResultsStore() as store:
            store.add_many(
                [
                    ResultRecord("Beers", "detection", "RAHA", "f1", 0.9, seed=0),
                    ResultRecord("Beers", "detection", "RAHA", "f1", 0.8, seed=1),
                    ResultRecord("Beers", "detection", "SD", "f1", 0.4, seed=0),
                ]
            )
            assert store.count() == 3
            values = store.values(dataset="Beers", method="RAHA", metric="f1")
            assert sorted(values) == [0.8, 0.9]
            means = store.mean_by_method("Beers", "detection", "f1")
            assert means["RAHA"] == pytest.approx(0.85)
            assert means["SD"] == pytest.approx(0.4)

    def test_nan_stored_as_null(self):
        with ResultsStore() as store:
            store.add(ResultRecord("X", "repair", "GT", "rmse", float("nan")))
            assert store.values(dataset="X") == []

    def test_scenario_filter(self):
        with ResultsStore() as store:
            store.add(ResultRecord("X", "model", "MLP", "f1", 0.7, scenario="S1"))
            store.add(ResultRecord("X", "model", "MLP", "f1", 0.9, scenario="S4"))
            assert store.values(scenario="S1") == [0.7]
            assert store.values(scenario="S4") == [0.9]
