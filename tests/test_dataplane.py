"""Tier-1 tests for the shared-memory data plane (repro.dataplane).

The codec's contract is *bit* fidelity: ``Table.from_buffers(
*table.to_buffers())`` returns a table whose every cell has the same
Python type and -- for floats -- the same 8 bytes as the original,
including NaN payloads, infinities and ``-0.0``.  On top of that sit the
segment lifecycle (create/attach/close/unlink with no ``/dev/shm``
residue) and the end-to-end acceptance matrix: a pooled detection run
checkpoints byte-identically to the serial reference for any worker
count, block size and start method.
"""

import json
import pickle
import sqlite3
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmark import run_detection_suite
from repro.datagen import generate
from repro.dataplane import (
    SEGMENT_PREFIX,
    SegmentManager,
    attach_shipment,
    attach_table,
    live_segments,
    pack_shared,
)
from repro.dataset import CATEGORICAL, NUMERICAL, Schema, Table
from repro.detectors import MVDetector, SDDetector
from repro.parallel import ProcessPoolExecutor, null_sleep
from repro.repository import CheckpointStore
from repro.resilience import SuiteCheckpoint


# ----------------------------------------------------------------------
# Bit-level cell comparison
# ----------------------------------------------------------------------
def _same_cell(a, b) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, float):
        return struct.pack("<d", a) == struct.pack("<d", b)
    if isinstance(a, (int, str, bool)) or a is None:
        return a == b
    return pickle.dumps(a) == pickle.dumps(b)


def _assert_bit_identical(original: Table, restored: Table) -> None:
    assert restored.n_rows == original.n_rows
    assert restored.column_names == original.column_names
    for name in original.column_names:
        before = original.column(name)
        after = restored.column(name)
        for row in range(original.n_rows):
            assert _same_cell(before[row], after[row]), (
                f"cell ({row}, {name}): {before[row]!r} "
                f"({type(before[row]).__name__}) != {after[row]!r} "
                f"({type(after[row]).__name__})"
            )


def _round_trip(table: Table) -> Table:
    encoded = table.to_buffers()
    buf = bytearray(encoded.nbytes)
    encoded.write_into(buf)
    return Table.from_buffers(encoded.meta, memoryview(buf))


# ----------------------------------------------------------------------
# Hypothesis strategies: adversarial cells
# ----------------------------------------------------------------------
_numeric_cell = st.one_of(
    st.none(),
    st.floats(allow_nan=True, allow_infinity=True, width=64),
    st.integers(min_value=-(2 ** 70), max_value=2 ** 70),
    st.booleans(),
)
_text_cell = st.one_of(
    st.none(),
    st.text(max_size=12),  # full unicode, embedded newlines/quotes
    st.floats(allow_nan=True, allow_infinity=True, width=64),
    st.integers(min_value=-(2 ** 70), max_value=2 ** 70),
)


@st.composite
def adversarial_tables(draw):
    n_rows = draw(st.integers(min_value=0, max_value=10))
    n_numeric = draw(st.integers(min_value=0, max_value=3))
    n_categorical = draw(st.integers(min_value=0, max_value=3))
    pairs = [(f"n{i}", NUMERICAL) for i in range(n_numeric)] + [
        (f"c{i}", CATEGORICAL) for i in range(n_categorical)
    ]
    schema = Schema.from_pairs(pairs)
    columns = {}
    for name, kind in pairs:
        cell = _numeric_cell if kind is NUMERICAL else _text_cell
        columns[name] = draw(
            st.lists(cell, min_size=n_rows, max_size=n_rows)
        )
    return Table(schema, columns)


class TestCodecRoundTrip:
    @given(adversarial_tables())
    @settings(max_examples=80, deadline=None)
    def test_round_trip_is_type_and_bit_identical(self, table):
        _assert_bit_identical(table, _round_trip(table))

    def test_preserves_float_bit_patterns(self):
        signalling_nan = struct.unpack(
            "<d", struct.pack("<Q", 0x7FF0000000000001)
        )[0]
        schema = Schema.from_pairs([("x", NUMERICAL)])
        table = Table(
            schema,
            {
                "x": [
                    signalling_nan, float("nan"), float("inf"),
                    float("-inf"), -0.0, 0.0, 2.0 ** -1074,
                ]
            },
        )
        restored = _round_trip(table)
        for row in range(table.n_rows):
            assert struct.pack("<d", table.column("x")[row]) == struct.pack(
                "<d", restored.column("x")[row]
            )

    def test_preserves_exotic_cells(self):
        schema = Schema.from_pairs([("c", CATEGORICAL)])
        table = Table(
            schema,
            {
                "c": [
                    "宽字符 unicode ✓", "line\nbreak \"quoted\"", "",
                    2 ** 100, -(2 ** 63) - 1, -(2 ** 63), 2 ** 63 - 1,
                    True, False, None, np.float32(1.5),
                ]
            },
        )
        _assert_bit_identical(table, _round_trip(table))

    def test_zero_row_and_empty_column_tables(self):
        schema = Schema.from_pairs([("a", NUMERICAL), ("b", CATEGORICAL)])
        _assert_bit_identical(
            Table(schema, {"a": [], "b": []}),
            _round_trip(Table(schema, {"a": [], "b": []})),
        )
        empty = Table(Schema.from_pairs([]), {})
        _assert_bit_identical(empty, _round_trip(empty))

    def test_attached_view_is_read_only(self):
        schema = Schema.from_pairs([("x", NUMERICAL)])
        restored = _round_trip(Table(schema, {"x": [1.0, 2.0]}))
        with pytest.raises(TypeError, match="read-only"):
            restored.set_cell(0, "x", 9.0)

    def test_interned_strings_share_objects(self):
        schema = Schema.from_pairs([("c", CATEGORICAL)])
        restored = _round_trip(
            Table(schema, {"c": ["dup", "dup", "other", "dup"]})
        )
        column = restored.column("c")
        assert column[0] is column[1] is column[3]


# ----------------------------------------------------------------------
# Segment lifecycle
# ----------------------------------------------------------------------
class TestSegmentLifecycle:
    def test_destroy_unlinks_every_created_segment(self):
        manager = SegmentManager()
        names = []
        try:
            for nbytes in (1, 64, 4096):
                names.append(manager.create(nbytes).name)
            assert set(names) <= set(live_segments())
        finally:
            manager.destroy()
        assert not (set(names) & set(live_segments()))
        manager.destroy()  # idempotent

    def test_context_manager_cleans_up_on_error(self):
        with pytest.raises(RuntimeError):
            with SegmentManager() as manager:
                name = manager.create(128).name
                assert name in live_segments()
                raise RuntimeError("boom")
        assert name not in live_segments()

    def test_segment_names_carry_the_lint_prefix(self):
        with SegmentManager() as manager:
            assert manager.create(8).name.startswith(SEGMENT_PREFIX)


# ----------------------------------------------------------------------
# Shipment pack/attach
# ----------------------------------------------------------------------
class TestShipment:
    def test_tables_deduplicate_by_identity(self):
        table = Table(Schema.from_pairs([("x", NUMERICAL)]), {"x": [1.0]})
        shared = {"a": table, "b": table, "label": "twice"}
        with SegmentManager() as manager:
            shipment = pack_shared(shared, manager)
            assert len(shipment.handles) == 1
            context = attach_shipment(shipment)
        assert context["label"] == "twice"
        assert context["a"] is context["b"]

    def test_attach_is_memoized_per_segment(self):
        table = Table(Schema.from_pairs([("x", NUMERICAL)]), {"x": [3.5]})
        with SegmentManager() as manager:
            shipment = pack_shared({"t": table}, manager)
            (handle,) = shipment.handles
            assert attach_table(handle) is attach_table(handle)

    def test_shared_bytes_accounting(self):
        table = Table(
            Schema.from_pairs([("x", NUMERICAL)]),
            {"x": [float(i) for i in range(100)]},
        )
        with SegmentManager() as manager:
            shipment = pack_shared({"t": table}, manager)
            assert shipment.shared_bytes == manager.total_bytes > 0
            # The per-worker pickle is a small shell, not the table.
            assert shipment.shipped_bytes < shipment.shared_bytes

    def test_unpicklable_context_falls_back_to_by_reference(self):
        shared = {"clock": lambda: 0.0}
        with SegmentManager() as manager:
            shipment = pack_shared(shared, manager)
            assert shipment.shell is None
            assert shipment.shipped_bytes == 0
            assert manager.names == []
        assert attach_shipment(shipment) is shared


# ----------------------------------------------------------------------
# End-to-end byte identity: workers x block size x start method
# ----------------------------------------------------------------------
class StepClock:
    """Deterministic monotonic clock: each reading advances one tick.

    Power-of-two tick, so elapsed times are exact call-count multiples
    and every worker's copy agrees with the serial run bit for bit.
    """

    def __init__(self, tick: float = 2.0 ** -10):
        self.ticks = 0
        self.tick = tick

    def __call__(self) -> float:
        self.ticks += 1
        return self.ticks * self.tick


def _dataset():
    return generate("SmartFactory", n_rows=120, seed=3)


def _store_bytes(path: str) -> bytes:
    connection = sqlite3.connect(path)
    try:
        rows = connection.execute(
            "SELECT run_id, unit, payload_json FROM checkpoints "
            "ORDER BY run_id, unit"
        ).fetchall()
    finally:
        connection.close()
    return json.dumps(rows, sort_keys=True).encode()


def _checkpointed_detection(tmp_path, tag, executor, block_rows):
    path = str(tmp_path / f"{tag}.sqlite")
    with SuiteCheckpoint.open(path, "run", resume=False) as checkpoint:
        runs = run_detection_suite(
            _dataset(),
            [MVDetector(), SDDetector(3.0)],
            clock=StepClock(),
            sleep=null_sleep,
            checkpoint=checkpoint,
            executor=executor,
            block_rows=block_rows,
        )
    payloads = json.dumps(
        [r.to_payload() for r in runs], sort_keys=True
    ).encode()
    return _store_bytes(path), payloads


class TestEndToEndByteIdentity:
    @pytest.mark.parametrize("block_rows", [None, 48])
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_pool_checkpoint_store_matches_serial(
        self, tmp_path, workers, start_method, block_rows
    ):
        reference_store, reference_payloads = _checkpointed_detection(
            tmp_path, "serial", None, block_rows
        )
        pool = ProcessPoolExecutor(workers, start_method=start_method)
        store, payloads = _checkpointed_detection(
            tmp_path, f"pool-{workers}-{start_method}", pool, block_rows
        )
        assert store == reference_store
        assert payloads == reference_payloads

    def test_explicit_chunk_sizes_do_not_change_bytes(self, tmp_path):
        reference_store, reference_payloads = _checkpointed_detection(
            tmp_path, "serial", None, 32
        )
        for chunk_size in (1, 3):
            pool = ProcessPoolExecutor(2, chunk_size=chunk_size)
            store, payloads = _checkpointed_detection(
                tmp_path, f"chunk-{chunk_size}", pool, 32
            )
            assert store == reference_store
            assert payloads == reference_payloads

    def test_normal_teardown_leaves_no_segments(self):
        before = set(live_segments())
        run_detection_suite(
            _dataset(),
            [MVDetector()],
            clock=StepClock(),
            sleep=null_sleep,
            executor=ProcessPoolExecutor(2),
        )
        assert set(live_segments()) <= before
