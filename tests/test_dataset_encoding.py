"""Unit tests for feature encoding and splits."""

import math

import numpy as np
import pytest

from repro.dataset import (
    CATEGORICAL,
    NUMERICAL,
    LabelEncoder,
    Schema,
    Table,
    TableEncoder,
    kfold_indices,
    standardize,
    train_test_split,
)
from repro.dataset.encoding import encode_supervised


@pytest.fixture
def table():
    schema = Schema.from_pairs(
        [("x", NUMERICAL), ("color", CATEGORICAL), ("y", NUMERICAL)]
    )
    return Table(
        schema,
        {
            "x": [1.0, 2.0, 3.0, 4.0, None, 6.0],
            "color": ["r", "g", "b", "r", "r", None],
            "y": [10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
        },
    )


class TestStandardize:
    def test_zero_mean_unit_std(self):
        m = np.array([[1.0, 5.0], [3.0, 5.0], [5.0, 5.0]])
        scaled, mean, std = standardize(m)
        assert np.allclose(scaled.mean(axis=0), [0.0, 0.0])
        assert np.allclose(mean, [3.0, 5.0])
        # Constant column: std forced to 1, values centred to 0.
        assert np.allclose(scaled[:, 1], 0.0)

    def test_empty(self):
        scaled, _, _ = standardize(np.zeros((0, 2)))
        assert scaled.shape == (0, 2)


class TestLabelEncoder:
    def test_round_trip(self):
        enc = LabelEncoder()
        codes = enc.fit_transform(["cat", "dog", "cat", "bird"])
        assert enc.n_classes == 3
        assert enc.inverse_transform(codes) == ["cat", "dog", "cat", "bird"]

    def test_missing_is_a_class(self):
        enc = LabelEncoder()
        codes = enc.fit_transform(["a", None, "a"])
        assert enc.n_classes == 2
        assert codes[1] != codes[0]

    def test_unseen_maps_to_zero(self):
        enc = LabelEncoder().fit(["a", "b"])
        assert enc.transform(["zzz"])[0] == 0

    def test_use_before_fit(self):
        with pytest.raises(RuntimeError):
            LabelEncoder().transform(["a"])

    def test_numeric_labels(self):
        enc = LabelEncoder()
        codes = enc.fit_transform([0, 1, 1, 0])
        assert enc.n_classes == 2
        assert codes.tolist() == [0, 1, 1, 0]


class TestTableEncoder:
    def test_shapes_and_names(self, table):
        enc = TableEncoder()
        features = enc.fit_transform(table, exclude=["y"])
        # 1 numerical + 3 one-hot levels.
        assert features.shape == (6, 4)
        assert enc.n_features == 4
        assert enc.feature_names == ["x", "color=r", "color=b", "color=g"]

    def test_missing_numeric_mean_imputed(self, table):
        enc = TableEncoder(scale=False)
        features = enc.fit_transform(table, exclude=["y"])
        expected_mean = np.nanmean([1.0, 2.0, 3.0, 4.0, 6.0])
        assert features[4, 0] == pytest.approx(expected_mean)

    def test_missing_category_all_zero(self, table):
        enc = TableEncoder()
        features = enc.fit_transform(table, exclude=["y"])
        assert np.allclose(features[5, 1:], 0.0)

    def test_unseen_category_all_zero(self, table):
        enc = TableEncoder().fit(table, exclude=["y"])
        other = table.copy()
        other.set_cell(0, "color", "violet")
        features = enc.transform(other)
        assert np.allclose(features[0, 1:], 0.0)

    def test_max_categories_caps_width(self, table):
        enc = TableEncoder(max_categories=1)
        features = enc.fit_transform(table, exclude=["y"])
        assert features.shape == (6, 2)
        # Most frequent category kept: 'r'.
        assert enc.feature_names == ["x", "color=r"]

    def test_use_before_fit(self, table):
        with pytest.raises(RuntimeError):
            TableEncoder().transform(table)
        with pytest.raises(RuntimeError):
            _ = TableEncoder().n_features

    def test_invalid_max_categories(self):
        with pytest.raises(ValueError):
            TableEncoder(max_categories=0)

    def test_corrupted_numeric_imputed_not_crash(self, table):
        dirty = table.copy()
        dirty.set_cell(0, "x", "oops")
        enc = TableEncoder(scale=False).fit(table, exclude=["y"])
        features = enc.transform(dirty)
        assert not np.isnan(features).any()


class TestEncodeSupervised:
    def test_classification(self, table):
        train = table.select_rows([0, 1, 2, 3])
        test = table.select_rows([4, 5])
        x_tr, y_tr, x_te, y_te, enc = encode_supervised(
            train, test, target="color", task="classification"
        )
        assert x_tr.shape[0] == 4 and x_te.shape[0] == 2
        assert x_tr.shape[1] == x_te.shape[1]
        assert y_tr.dtype == np.int64

    def test_regression_nan_target_filled(self, table):
        dirty = table.copy()
        dirty.set_cell(0, "y", None)
        train = dirty.select_rows([0, 1, 2])
        test = dirty.select_rows([3, 4, 5])
        _, y_tr, _, _, _ = encode_supervised(
            train, test, target="y", task="regression"
        )
        assert not np.isnan(y_tr).any()

    def test_bad_task(self, table):
        with pytest.raises(ValueError):
            encode_supervised(table, table, target="y", task="ranking")


class TestSplits:
    def test_train_test_split_disjoint_exhaustive(self):
        train, test = train_test_split(100, 0.25, seed=0)
        assert len(train) + len(test) == 100
        assert set(train).isdisjoint(set(test))
        assert len(test) == 25

    def test_split_reproducible(self):
        a = train_test_split(50, 0.2, seed=7)
        b = train_test_split(50, 0.2, seed=7)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_split_validation(self):
        with pytest.raises(ValueError):
            train_test_split(10, 0.0)
        with pytest.raises(ValueError):
            train_test_split(1, 0.5)
        with pytest.raises(ValueError):
            train_test_split(10, 0.5, stratify=[1, 2])

    def test_stratified_keeps_classes_in_both_splits(self):
        labels = ["a"] * 40 + ["b"] * 10
        train, test = train_test_split(50, 0.2, seed=1, stratify=labels)
        train_labels = {labels[i] for i in train}
        test_labels = {labels[i] for i in test}
        assert train_labels == {"a", "b"}
        assert test_labels == {"a", "b"}

    def test_stratified_distinguishes_same_repr_labels(self):
        # Regression: groups used to be keyed on str(label), merging the
        # int 1 with the string "1" (and None with "None") into one
        # stratum, so a minority class could vanish from a split.
        labels = [1] * 40 + ["1"] * 4 + [None] * 4 + ["None"] * 4
        train, test = train_test_split(
            len(labels), 0.25, seed=0, stratify=labels
        )
        for cls in (1, "1", None, "None"):
            members = {
                i for i, label in enumerate(labels)
                if label is cls or (type(label) is type(cls) and label == cls)
            }
            assert members & set(train.tolist()), cls
            assert members & set(test.tolist()), cls

    def test_stratified_type_keying_preserves_proportions(self):
        labels = [0] * 30 + ["0"] * 10
        train, test = train_test_split(40, 0.25, seed=3, stratify=labels)
        # Independent strata: 30 ints contribute round(30*0.25)=8 test
        # rows, 10 strings round(10*0.25)=2 -- not one merged group of 40.
        int_test = sum(1 for i in test if type(labels[i]) is int)
        str_test = sum(1 for i in test if type(labels[i]) is str)
        assert int_test == 8
        assert str_test == 2

    def test_kfold_partitions(self):
        folds = list(kfold_indices(20, 4, seed=3))
        assert len(folds) == 4
        all_test = np.concatenate([t for _, t in folds])
        assert sorted(all_test.tolist()) == list(range(20))
        for train, test in folds:
            assert set(train).isdisjoint(set(test))
            assert len(train) + len(test) == 20

    def test_kfold_validation(self):
        with pytest.raises(ValueError):
            list(kfold_indices(10, 1))
        with pytest.raises(ValueError):
            list(kfold_indices(3, 5))
