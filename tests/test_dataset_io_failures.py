"""Dataset save/load round trips, repository metadata, and failure
injection into the benchmark runner."""

import json

import numpy as np
import pytest

from repro.benchmark import run_detection_suite, run_repair_suite
from repro.context import CleaningContext
from repro.datagen import generate
from repro.datagen.io import _kb_from_dict, _kb_to_dict, load_dataset, save_dataset
from repro.detectors import KnowledgeBase, MVDetector, NadeefDetector
from repro.detectors.base import Detector
from repro.repair import GroundTruthRepair, RepairMethod
from repro.repository import DataRepository
from repro.repository.store import REPAIRED


class TestDatasetRoundTrip:
    @pytest.mark.parametrize("name", ["Beers", "Citation", "Nasa"])
    def test_save_load_preserves_everything(self, tmp_path, name):
        dataset = generate(name, n_rows=80, seed=4)
        directory = str(tmp_path / name)
        save_dataset(dataset, directory)
        loaded = load_dataset(directory)
        assert loaded.name == dataset.name
        assert loaded.task == dataset.task
        assert loaded.target == dataset.target
        assert loaded.key_columns == dataset.key_columns
        assert loaded.clean.diff_cells(dataset.clean) == set()
        assert loaded.dirty.diff_cells(dataset.dirty) == set()
        assert loaded.error_cells == dataset.error_cells
        assert loaded.cells_by_type.keys() == dataset.cells_by_type.keys()
        assert [str(fd) for fd in loaded.fds] == [
            str(fd) for fd in dataset.fds
        ]
        assert len(loaded.constraints) == len(dataset.constraints)
        assert len(loaded.patterns) == len(dataset.patterns)

    def test_knowledge_base_round_trip(self, tmp_path):
        dataset = generate("Beers", n_rows=80, seed=5)
        directory = str(tmp_path / "beers")
        save_dataset(dataset, directory)
        loaded = load_dataset(directory)
        assert isinstance(loaded.knowledge_base, KnowledgeBase)
        assert loaded.knowledge_base.domains == dataset.knowledge_base.domains
        assert (
            loaded.knowledge_base.relations
            == dataset.knowledge_base.relations
        )
        # A loaded dataset drives the same rule-based detection.
        original = NadeefDetector().detect(dataset.context()).cells
        reloaded = NadeefDetector().detect(loaded.context()).cells
        assert original == reloaded

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(str(tmp_path / "ghost"))


class TestKnowledgeBaseSerialization:
    def test_pipe_in_concept_name_round_trips(self):
        # Regression: relations used to be serialized under "a|b" string
        # keys and re-split on the first "|", so a concept name that
        # itself contained a pipe came back attached to the wrong pair.
        kb = KnowledgeBase()
        kb.add_domain("city|district", {"alpha"})
        kb.add_relation("city|district", "zip", [("alpha", "10")])
        kb.add_relation("country", "capital", [("at", "vienna")])
        loaded = _kb_from_dict(_kb_to_dict(kb))
        assert loaded.domains == kb.domains
        assert loaded.relations == kb.relations
        assert ("city|district", "zip") in loaded.relations

    def test_round_trip_is_json_stable(self):
        kb = KnowledgeBase()
        kb.add_relation("country", "capital", [("at", "vienna")])
        payload = json.loads(json.dumps(_kb_to_dict(kb)))
        assert _kb_from_dict(payload).relations == kb.relations

    def test_legacy_pipe_keyed_relations_still_load(self):
        payload = {
            "domains": {"country": ["at", "de"]},
            "relations": {"country|capital": [["at", "vienna"]]},
        }
        loaded = _kb_from_dict(payload)
        assert loaded.relations == {("country", "capital"): {("at", "vienna")}}


class TestRepositoryMetadata:
    def test_metadata_round_trip(self):
        dataset = generate("Nasa", n_rows=60, seed=6)
        with DataRepository() as repo:
            repo.save_version(
                "Nasa", REPAIRED, dataset.clean, variant="MVD+Delete",
                metadata={"kept_rows": [0, 2, 4], "detector": "MVD"},
            )
            metadata = repo.load_metadata("Nasa", REPAIRED, "MVD+Delete")
            assert metadata["kept_rows"] == [0, 2, 4]
            assert metadata["detector"] == "MVD"

    def test_default_metadata_empty(self):
        dataset = generate("Nasa", n_rows=60, seed=7)
        with DataRepository() as repo:
            repo.save_version("Nasa", REPAIRED, dataset.clean, variant="x")
            assert repo.load_metadata("Nasa", REPAIRED, "x") == {}

    def test_missing_metadata_raises(self):
        with DataRepository() as repo:
            with pytest.raises(KeyError):
                repo.load_metadata("ghost", REPAIRED)


class _ExplodingDetector(Detector):
    name = "Exploder"
    tackles = frozenset({"holistic"})

    def _detect(self, context):
        raise RuntimeError("synthetic detector crash")


class _ExplodingRepair(RepairMethod):
    name = "ExplodingRepair"

    def _repair(self, context, detections):
        raise ValueError("synthetic repair crash")


class TestFailureInjection:
    def test_detector_crash_contained(self):
        dataset = generate("Nasa", n_rows=80, seed=8)
        runs = run_detection_suite(
            dataset, [_ExplodingDetector(), MVDetector()], seed=0
        )
        by_name = {r.detector: r for r in runs}
        assert by_name["Exploder"].failed
        assert "synthetic detector crash" in by_name["Exploder"].failure
        assert not by_name["MVD"].failed
        # A failed detector scores zero, it does not poison the suite.
        assert by_name["Exploder"].scores.f1 == 0.0

    def test_repair_crash_contained(self):
        dataset = generate("Nasa", n_rows=80, seed=9)
        runs = run_repair_suite(
            dataset,
            {"oracle": dataset.error_cells},
            [_ExplodingRepair(), GroundTruthRepair()],
            seed=0,
        )
        by_name = {r.repair: r for r in runs}
        assert by_name["ExplodingRepair"].failed
        assert not by_name["GT"].failed

    def test_oracle_failure_mode(self):
        dataset = generate("Nasa", n_rows=60, seed=10)
        blind = dataset.context(with_ground_truth=False)
        with pytest.raises(RuntimeError):
            GroundTruthRepair().repair(blind, dataset.error_cells)
