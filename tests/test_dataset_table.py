"""Unit tests for the Table substrate."""

import math

import numpy as np
import pytest

from repro.dataset import CATEGORICAL, NUMERICAL, Column, Schema, Table
from repro.dataset.table import (
    coerce_float,
    infer_schema,
    is_missing,
    values_equal,
)


@pytest.fixture
def schema():
    return Schema.from_pairs(
        [("id", NUMERICAL), ("city", CATEGORICAL), ("temp", NUMERICAL)]
    )


@pytest.fixture
def table(schema):
    return Table(
        schema,
        {
            "id": [1.0, 2.0, 3.0, 4.0],
            "city": ["berlin", "paris", None, "rome"],
            "temp": [20.5, math.nan, 18.0, "hot"],
        },
    )


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema([Column("a", NUMERICAL), Column("a", CATEGORICAL)])

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Column("a", "textual")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Column("", NUMERICAL)

    def test_lookup_and_kinds(self, schema):
        assert schema["city"].is_categorical
        assert schema.kind_of("id") == NUMERICAL
        assert schema.numerical_names == ["id", "temp"]
        assert schema.categorical_names == ["city"]
        assert "city" in schema
        assert "missing" not in schema

    def test_unknown_column_raises(self, schema):
        with pytest.raises(KeyError):
            schema["nope"]

    def test_drop(self, schema):
        assert schema.drop(["temp"]).names == ["id", "city"]
        with pytest.raises(KeyError):
            schema.drop(["nope"])

    def test_equality_and_hash(self, schema):
        clone = Schema.from_pairs(
            [("id", NUMERICAL), ("city", CATEGORICAL), ("temp", NUMERICAL)]
        )
        assert schema == clone
        assert hash(schema) == hash(clone)


class TestMissingAndCoercion:
    @pytest.mark.parametrize(
        "value", [None, math.nan, "", "NA", "n/a", "NaN", "null", "?", " NULL "]
    )
    def test_missing_markers(self, value):
        assert is_missing(value)

    @pytest.mark.parametrize("value", [0, 0.0, "0", "99999", "x", False])
    def test_non_missing(self, value):
        assert not is_missing(value)

    def test_coerce_float(self):
        assert coerce_float("3.5") == 3.5
        assert coerce_float(2) == 2.0
        assert math.isnan(coerce_float("abc"))
        assert math.isnan(coerce_float(None))

    def test_values_equal_numeric_string(self):
        assert values_equal("3.0", 3.0)
        assert values_equal(None, math.nan)
        assert not values_equal("3.0", 4.0)
        assert not values_equal("abc", 3.0)
        assert values_equal(" x ", "x")


class TestTableBasics:
    def test_shape(self, table):
        assert table.shape == (4, 3)
        assert table.n_rows == 4
        assert table.column_names == ["id", "city", "temp"]

    def test_mismatched_columns_rejected(self, schema):
        with pytest.raises(ValueError, match="does not match schema"):
            Table(schema, {"id": [1], "city": ["x"]})

    def test_ragged_columns_rejected(self, schema):
        with pytest.raises(ValueError, match="rows"):
            Table(schema, {"id": [1, 2], "city": ["x"], "temp": [1.0, 2.0]})

    def test_cell_access(self, table):
        assert table.get_cell(0, "city") == "berlin"
        table.set_cell(0, "city", "munich")
        assert table.get_cell(0, "city") == "munich"

    def test_row_bounds_checked(self, table):
        with pytest.raises(IndexError):
            table.get_cell(99, "city")
        with pytest.raises(IndexError):
            table.get_cell(-1, "city")

    def test_from_rows_round_trip(self, schema, table):
        rebuilt = Table.from_rows(schema, [table.row(i) for i in range(4)])
        assert rebuilt == table

    def test_from_rows_checks_width(self, schema):
        with pytest.raises(ValueError, match="fields"):
            Table.from_rows(schema, [(1, "x")])

    def test_empty(self, schema):
        empty = Table.empty(schema)
        assert empty.n_rows == 0
        assert empty.numeric_matrix().shape == (0, 2)

    def test_unhashable(self, table):
        with pytest.raises(TypeError):
            hash(table)


class TestNumericViews:
    def test_as_float_handles_corruption(self, table):
        temps = table.as_float("temp")
        assert temps[0] == 20.5
        assert math.isnan(temps[1])
        assert math.isnan(temps[3])  # 'hot' is corrupted, not missing

    def test_numeric_matrix(self, table):
        matrix = table.numeric_matrix()
        assert matrix.shape == (4, 2)
        assert matrix[0, 0] == 1.0

    def test_missing_mask_and_cells(self, table):
        mask = table.missing_mask("city")
        assert mask.tolist() == [False, False, True, False]
        assert (2, "city") in table.missing_cells()
        assert (1, "temp") in table.missing_cells()
        # Corrupted-to-text is NOT explicitly missing.
        assert (3, "temp") not in table.missing_cells()


class TestStructuralOps:
    def test_copy_is_deep(self, table):
        clone = table.copy()
        clone.set_cell(0, "city", "tokyo")
        assert table.get_cell(0, "city") == "berlin"

    def test_select_rows(self, table):
        sub = table.select_rows([2, 0])
        assert sub.n_rows == 2
        assert sub.get_cell(1, "city") == "berlin"

    def test_select_rows_bounds(self, table):
        with pytest.raises(IndexError):
            table.select_rows([7])

    def test_drop_rows(self, table):
        sub = table.drop_rows([0, 3])
        assert sub.n_rows == 2
        assert sub.get_cell(0, "city") == "paris"

    def test_select_and_drop_columns(self, table):
        sub = table.select_columns(["city"])
        assert sub.column_names == ["city"]
        sub2 = table.drop_columns(["temp"])
        assert sub2.column_names == ["id", "city"]

    def test_with_column(self, table):
        out = table.with_column(Column("flag", CATEGORICAL), ["a"] * 4)
        assert out.column_names[-1] == "flag"
        with pytest.raises(ValueError):
            table.with_column(Column("city", CATEGORICAL), ["x"] * 4)
        with pytest.raises(ValueError):
            table.with_column(Column("new", CATEGORICAL), ["x"])

    def test_append_rows(self, table):
        out = table.append_rows([(5.0, "oslo", 3.0)])
        assert out.n_rows == 5
        assert out.get_cell(4, "city") == "oslo"

    def test_map_column(self, table):
        out = table.map_column("city", lambda v: v.upper() if v else v)
        assert out.get_cell(0, "city") == "BERLIN"
        assert table.get_cell(0, "city") == "berlin"


class TestDiff:
    def test_diff_detects_changes(self, table):
        other = table.copy()
        other.set_cell(0, "temp", 99.0)
        other.set_cell(2, "city", "lyon")
        assert table.diff_cells(other) == {(0, "temp"), (2, "city")}

    def test_diff_nan_and_none_equal(self, table):
        other = table.copy()
        other.set_cell(1, "temp", None)  # was NaN
        assert table.diff_cells(other) == set()

    def test_diff_requires_same_shape(self, table):
        with pytest.raises(ValueError):
            table.diff_cells(table.select_rows([0, 1]))

    def test_equality(self, table):
        assert table == table.copy()
        other = table.copy()
        other.set_cell(0, "id", 42.0)
        assert table != other


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path, schema, table):
        path = str(tmp_path / "t.csv")
        table.to_csv(path)
        loaded = Table.from_csv(path, schema)
        assert loaded.n_rows == 4
        # NaN temp became empty string became None: still "missing-equal".
        assert table.diff_cells(loaded) == set()
        # Corrupted numeric payload survives the round trip verbatim.
        assert loaded.get_cell(3, "temp") == "hot"

    def test_header_mismatch(self, tmp_path, schema, table):
        path = str(tmp_path / "t.csv")
        table.to_csv(path)
        wrong = Schema.from_pairs([("a", NUMERICAL)])
        with pytest.raises(ValueError, match="header"):
            Table.from_csv(path, wrong)


class TestInferSchema:
    def test_infers_kinds(self):
        schema = infer_schema(
            {"a": [1, 2, None], "b": ["x", "2", "z"], "c": ["1", "2.5", ""]}
        )
        assert schema.kind_of("a") == NUMERICAL
        assert schema.kind_of("b") == CATEGORICAL
        assert schema.kind_of("c") == NUMERICAL

    def test_all_missing_is_categorical(self):
        schema = infer_schema({"a": [None, None]})
        assert schema.kind_of("a") == CATEGORICAL
