"""Unit tests for detector internals: fingerprints, featurizers, dBoost
models, ZeroER pair features, and the BART unary/FD machinery."""

import numpy as np
import pytest

from repro.dataset import CATEGORICAL, NUMERICAL, Schema, Table
from repro.detectors.dboost import (
    _Config,
    _gaussian_outliers,
    _histogram_outliers,
    _mixture_outliers,
)
from repro.detectors.duplicates import (
    _string_similarity,
    column_standard_deviations,
    pair_features,
)
from repro.detectors.features import metadata_features, strategy_features
from repro.detectors.openrefine import cluster_column, fingerprint


class TestFingerprint:
    @pytest.mark.parametrize(
        "a,b",
        [
            ("New York", "new york"),
            ("new  york ", "York New"),
            ("Acme Inc", "acme"),
            ("foo_bar", "foo bar"),
            ("don't", "dont"),
        ],
    )
    def test_variants_collide(self, a, b):
        assert fingerprint(a) == fingerprint(b)

    def test_distinct_entities_do_not_collide(self):
        assert fingerprint("berlin") != fingerprint("munich")

    def test_cluster_column_counts(self):
        schema = Schema.from_pairs([("c", CATEGORICAL)])
        table = Table(
            schema, {"c": ["Berlin", "berlin", "berlin", "munich", None]}
        )
        clusters = cluster_column(table, "c")
        berlin = clusters[fingerprint("berlin")]
        assert berlin["berlin"] == 2
        assert berlin["Berlin"] == 1
        assert sum(len(v) for v in clusters.values()) == 3  # distinct raws


class TestDBoostModels:
    def test_gaussian_flags_extreme(self):
        values = np.array([0.0] * 50 + [100.0])
        flagged = _gaussian_outliers(values, 3.0)
        assert flagged[-1]
        assert flagged.sum() == 1

    def test_gaussian_handles_constant(self):
        values = np.full(20, 5.0)
        assert not _gaussian_outliers(values, 3.0).any()

    def test_histogram_flags_rare_bin(self):
        rng = np.random.default_rng(0)
        values = np.concatenate([rng.normal(0, 1, 200), [50.0]])
        flagged = _histogram_outliers(values, 0.01, 20)
        assert flagged[-1]

    def test_mixture_flags_low_likelihood(self):
        # A point in the density gap *between* two modes has low likelihood
        # under every component.  (A gross extreme value can instead be
        # absorbed by variance inflation -- the classic GMM failure that
        # motivates dBoost's configuration search across model families.)
        rng = np.random.default_rng(1)
        values = np.concatenate(
            [rng.normal(0, 1, 100), rng.normal(20, 1, 100), [10.0]]
        )
        flagged = _mixture_outliers(values, 0.02, 2, rng)
        assert flagged[-1]

    def test_nan_never_flagged(self):
        values = np.array([0.0] * 30 + [np.nan, 100.0])
        for flags in (
            _gaussian_outliers(values, 3.0),
            _histogram_outliers(values, 0.01, 10),
        ):
            assert not flags[-2]


class TestZeroERFeatures:
    def test_string_similarity_bounds(self):
        assert _string_similarity("abc", "abc") == 1.0
        assert _string_similarity("abc", "xyz") < 0.3
        assert 0.0 <= _string_similarity("berlin", "berln") <= 1.0

    def test_pair_features_duplicate_rows_score_high(self):
        schema = Schema.from_pairs([("x", NUMERICAL), ("c", CATEGORICAL)])
        table = Table(
            schema,
            {"x": [1.0, 1.0, 50.0], "c": ["alpha", "alpha", "omega"]},
        )
        stds = column_standard_deviations(table)
        same = pair_features(table, 0, 1, stds)
        different = pair_features(table, 0, 2, stds)
        assert same.mean() > 0.95
        assert different.mean() < same.mean()

    def test_missing_values_neutral(self):
        schema = Schema.from_pairs([("x", NUMERICAL)])
        table = Table(schema, {"x": [1.0, None]})
        features = pair_features(table, 0, 1, {"x": 1.0})
        assert features[0] == 0.5


class TestFeaturizers:
    def _table(self):
        schema = Schema.from_pairs([("n", NUMERICAL), ("c", CATEGORICAL)])
        return Table(
            schema,
            {
                "n": [1.0, 2.0, 3.0, None, 100.0, "junk"],
                "c": ["a", "a", "b", "a", None, "a"],
            },
        )

    def test_strategy_features_shape_and_flags(self):
        table = self._table()
        features = strategy_features(table, "n")
        assert features.shape[0] == 6
        # Missing-cell column is the first strategy.
        assert features[3, 0] == 1.0
        # Non-numeric payload strategy is the last column.
        assert features[5, -1] == 1.0
        assert features[0, -1] == 0.0

    def test_metadata_features_shape(self):
        table = self._table()
        features = metadata_features(table, "c")
        assert features.shape == (6, 7)
        assert np.isfinite(features).all()

    def test_identical_values_identical_features(self):
        table = self._table()
        features = strategy_features(table, "c")
        assert np.array_equal(features[0], features[1])


class TestBartInternals:
    def test_fd_shape_extraction(self):
        from repro.constraints import FunctionalDependency
        from repro.errors.bart import BartEngine

        fd = FunctionalDependency(("a", "b"), "c")
        engine = BartEngine([fd.to_denial_constraint()])
        shape = engine._fd_shape(fd.to_denial_constraint())
        assert shape is not None
        lhs, rhs = shape
        assert sorted(lhs) == ["a", "b"]
        assert rhs == "c"

    def test_non_fd_constraint_yields_none(self):
        from repro.constraints import DenialConstraint, Predicate
        from repro.errors.bart import BartEngine

        dc = DenialConstraint(
            [Predicate("a", ">", constant=1.0)], binary=False
        )
        engine = BartEngine([dc])
        assert engine._fd_shape(dc) is None
