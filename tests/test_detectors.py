"""Tests for all 19 error detectors.

Each detector is exercised on a synthetic table with a planted error of the
type it targets; we check recall on the planted cells and sane precision.
"""

import numpy as np
import pytest

from repro.constraints import ColumnPattern, FunctionalDependency
from repro.context import CleaningContext
from repro.dataset import CATEGORICAL, NUMERICAL, Schema, Table
from repro.detectors import (
    CleanLabDetector,
    DBoostDetector,
    ED2Detector,
    FahesDetector,
    HoloCleanDetector,
    IFDetector,
    IQRDetector,
    KataraDetector,
    KeyCollisionDetector,
    KnowledgeBase,
    MaxEntropyDetector,
    MetadataDrivenDetector,
    MinKDetector,
    MVDetector,
    NadeefDetector,
    OpenRefineDetector,
    PicketDetector,
    RahaDetector,
    SDDetector,
    ZeroERDetector,
    all_detectors,
    detector_registry,
)
from repro.errors import (
    ImplicitMissingInjector,
    MislabelInjector,
    MissingValueInjector,
    OutlierInjector,
)
from repro.metrics import detection_scores


def base_table(n=200, seed=0):
    rng = np.random.default_rng(seed)
    schema = Schema.from_pairs(
        [
            ("amount", NUMERICAL),
            ("score", NUMERICAL),
            ("city", CATEGORICAL),
            ("country", CATEGORICAL),
            ("label", CATEGORICAL),
        ]
    )
    cities = ["berlin", "munich", "hamburg", "paris", "lyon"]
    country_of = {
        "berlin": "germany",
        "munich": "germany",
        "hamburg": "germany",
        "paris": "france",
        "lyon": "france",
    }
    chosen = [cities[int(rng.integers(5))] for _ in range(n)]
    amounts = rng.normal(100.0, 10.0, size=n)
    return Table(
        schema,
        {
            "amount": amounts.tolist(),
            "score": rng.uniform(0, 1, size=n).tolist(),
            "city": chosen,
            "country": [country_of[c] for c in chosen],
            "label": [
                "high" if a > 100 else "low" for a in amounts
            ],
        },
    )


RNG = lambda s=0: np.random.default_rng(s)


class TestMVDetector:
    def test_finds_all_missing(self):
        clean = base_table()
        result = MissingValueInjector().inject(clean, 0.05, RNG(1))
        ctx = CleaningContext(dirty=result.dirty)
        detected = MVDetector().detect(ctx)
        scores = detection_scores(detected.cells, result.error_cells)
        assert scores.recall == 1.0
        assert scores.precision == 1.0

    def test_runtime_recorded(self):
        ctx = CleaningContext(dirty=base_table(n=20))
        result = MVDetector().detect(ctx)
        assert result.runtime_seconds >= 0.0
        assert result.detector == "MVD"


@pytest.mark.parametrize(
    "detector",
    [SDDetector(3.0), IQRDetector(1.5), IFDetector(seed=1), DBoostDetector(seed=1)],
    ids=lambda d: d.name,
)
def test_outlier_detectors_find_planted_outliers(detector):
    clean = base_table(seed=2)
    result = OutlierInjector(degree=6.0).inject(clean, 0.05, RNG(3))
    ctx = CleaningContext(dirty=result.dirty, seed=1)
    detected = detector.detect(ctx)
    scores = detection_scores(detected.cells, result.error_cells)
    assert scores.recall > 0.8, f"{detector.name} recall {scores.recall}"
    assert scores.precision > 0.4, f"{detector.name} precision {scores.precision}"


def test_outlier_detectors_ignore_clean_data():
    ctx = CleaningContext(dirty=base_table(seed=4))
    for detector in (SDDetector(4.0), IQRDetector(3.0)):
        detected = detector.detect(ctx)
        # At most a sliver of false positives on clean Gaussian data.
        assert detected.n_detected < 0.01 * 200 * 5 + 5


class TestFahes:
    def test_finds_disguised_missing(self):
        clean = base_table(seed=5)
        result = ImplicitMissingInjector().inject(clean, 0.06, RNG(6))
        ctx = CleaningContext(dirty=result.dirty)
        detected = FahesDetector().detect(ctx)
        scores = detection_scores(detected.cells, result.error_cells)
        assert scores.recall > 0.7
        assert scores.precision > 0.5

    def test_ignores_explicit_missing(self):
        clean = base_table(seed=7)
        result = MissingValueInjector().inject(clean, 0.05, RNG(8))
        detected = FahesDetector().detect(CleaningContext(dirty=result.dirty))
        assert not (detected.cells & result.error_cells)

    def test_validation(self):
        with pytest.raises(ValueError):
            FahesDetector(min_repeats=0)
        with pytest.raises(ValueError):
            FahesDetector(extreme_quantile=0.7)


class TestNadeef:
    def test_fd_violations(self):
        clean = base_table(seed=9)
        dirty = clean.copy()
        dirty.set_cell(0, "country", "spain")  # violates city -> country
        ctx = CleaningContext(
            dirty=dirty, fds=[FunctionalDependency(("city",), "country")]
        )
        detected = NadeefDetector().detect(ctx)
        assert (0, "country") in detected.cells

    def test_pattern_violations(self):
        clean = base_table(seed=10)
        dirty = clean.copy()
        dirty.set_cell(3, "city", "b3rlin")
        ctx = CleaningContext(
            dirty=dirty, patterns=[ColumnPattern("city", r"[a-z ]+")]
        )
        detected = NadeefDetector().detect(ctx)
        assert (3, "city") in detected.cells

    def test_no_signals_no_detections(self):
        ctx = CleaningContext(dirty=base_table())
        assert NadeefDetector().detect(ctx).n_detected == 0


class TestHoloClean:
    def test_detects_rule_violations_and_missing(self):
        clean = base_table(seed=11)
        dirty = clean.copy()
        dirty.set_cell(0, "country", "spain")
        dirty.set_cell(1, "amount", None)
        ctx = CleaningContext(
            dirty=dirty, fds=[FunctionalDependency(("city",), "country")]
        )
        detected = HoloCleanDetector().detect(ctx)
        assert (0, "country") in detected.cells
        assert (1, "amount") in detected.cells

    def test_validation(self):
        with pytest.raises(ValueError):
            HoloCleanDetector(cooccurrence_threshold=1.0)


class TestKatara:
    def _kb(self):
        kb = KnowledgeBase()
        kb.add_domain("city", ["berlin", "munich", "hamburg", "paris", "lyon"])
        kb.add_domain("country", ["germany", "france"])
        kb.add_relation(
            "city",
            "country",
            [
                ("berlin", "germany"),
                ("munich", "germany"),
                ("hamburg", "germany"),
                ("paris", "france"),
                ("lyon", "france"),
            ],
        )
        return kb

    def test_domain_and_relation_violations(self):
        clean = base_table(seed=12)
        dirty = clean.copy()
        dirty.set_cell(0, "city", "atlantis")        # domain violation
        dirty.set_cell(1, "country", "france")       # relation violation
        if dirty.get_cell(1, "city") in ("paris", "lyon"):
            dirty.set_cell(1, "city", "berlin")
        ctx = CleaningContext(dirty=dirty, knowledge_base=self._kb())
        detected = KataraDetector().detect(ctx)
        assert (0, "city") in detected.cells
        assert (1, "country") in detected.cells
        # Relation violations flag both sides (KATARA's crowd ambiguity).
        assert (1, "city") in detected.cells

    def test_no_kb_no_detections(self):
        ctx = CleaningContext(dirty=base_table())
        assert KataraDetector().detect(ctx).n_detected == 0


class TestOpenRefine:
    def test_finds_format_variants(self):
        clean = base_table(seed=13)
        dirty = clean.copy()
        dirty.set_cell(0, "city", "Berlin")
        dirty.set_cell(5, "city", "berlin ")
        detected = OpenRefineDetector().detect(CleaningContext(dirty=dirty))
        assert (0, "city") in detected.cells

    def test_clean_column_unflagged(self):
        detected = OpenRefineDetector().detect(
            CleaningContext(dirty=base_table(seed=14))
        )
        assert detected.n_detected == 0


class TestDuplicateDetectors:
    def _with_duplicates(self, seed=15):
        clean = base_table(n=80, seed=seed)
        dirty = clean.copy()
        # Copy row 0 over rows 40 and 41.
        for victim in (40, 41):
            for column in clean.column_names:
                dirty.set_cell(victim, column, clean.get_cell(0, column))
        return dirty

    def test_key_collision(self):
        dirty = self._with_duplicates()
        ctx = CleaningContext(
            dirty=dirty, key_columns=["amount", "city"]
        )
        detected = KeyCollisionDetector().detect(ctx)
        rows = {r for r, _ in detected.cells}
        assert {40, 41} <= rows

    def test_key_collision_needs_keys(self):
        ctx = CleaningContext(dirty=self._with_duplicates())
        assert KeyCollisionDetector().detect(ctx).n_detected == 0

    def test_zeroer_finds_duplicates(self):
        dirty = self._with_duplicates(seed=16)
        ctx = CleaningContext(dirty=dirty, seed=3)
        detected = ZeroERDetector().detect(ctx)
        rows = {r for r, _ in detected.cells}
        assert rows & {0, 40, 41}

    def test_zeroer_clean_data_few_false_positives(self):
        ctx = CleaningContext(dirty=base_table(n=60, seed=17), seed=0)
        detected = ZeroERDetector().detect(ctx)
        flagged_rows = {r for r, _ in detected.cells}
        assert len(flagged_rows) <= 6


class TestCleanLab:
    def test_finds_flipped_labels(self):
        clean = base_table(n=300, seed=18)
        result = MislabelInjector("label").inject(clean, 0.08, RNG(19))
        ctx = CleaningContext(
            dirty=result.dirty, label_column="label", seed=0
        )
        detected = CleanLabDetector().detect(ctx)
        scores = detection_scores(detected.cells, result.error_cells)
        # Confident learning misses boundary samples by design; the paper
        # itself reports moderate CleanLab recall (Figure 2d).
        assert scores.recall > 0.45
        assert scores.precision > 0.7

    def test_no_label_column(self):
        ctx = CleaningContext(dirty=base_table())
        assert CleanLabDetector().detect(ctx).n_detected == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CleanLabDetector(n_folds=1)


class TestEnsembles:
    def _dirty_context(self, seed=20):
        clean = base_table(seed=seed)
        from repro.errors import CompositeInjector

        injector = CompositeInjector(
            [MissingValueInjector(), OutlierInjector(degree=6.0)]
        )
        result = injector.inject(clean, 0.08, RNG(seed + 1))
        return (
            CleaningContext(dirty=result.dirty, clean=clean, seed=1),
            result.error_cells,
        )

    def test_min_k_union_vs_intersection(self):
        ctx, errors = self._dirty_context()
        union = MinKDetector(k=1).detect(ctx)
        strict = MinKDetector(k=3).detect(ctx)
        assert strict.cells <= union.cells
        scores = detection_scores(union.cells, errors)
        assert scores.recall > 0.8

    def test_max_entropy_covers_errors(self):
        ctx, errors = self._dirty_context(seed=22)
        detected = MaxEntropyDetector().detect(ctx)
        scores = detection_scores(detected.cells, errors)
        assert scores.recall > 0.8

    def test_max_entropy_orders_detectors(self):
        ctx, _ = self._dirty_context(seed=23)
        detector = MaxEntropyDetector()
        detector.detect(ctx)
        assert len(detector.execution_order_) >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MinKDetector(k=0)
        with pytest.raises(ValueError):
            MaxEntropyDetector(min_new_fraction=1.0)


class TestMLSupported:
    def _dirty(self, seed=24):
        clean = base_table(seed=seed)
        from repro.errors import CompositeInjector

        injector = CompositeInjector(
            [MissingValueInjector(), OutlierInjector(degree=6.0)]
        )
        result = injector.inject(clean, 0.1, RNG(seed + 1))
        return clean, result

    @pytest.mark.parametrize(
        "detector",
        [
            MetadataDrivenDetector(label_budget=300),
            RahaDetector(labels_per_column=15),
            ED2Detector(labels_per_column=25),
        ],
        ids=lambda d: d.name,
    )
    def test_learns_to_detect(self, detector):
        clean, result = self._dirty()
        ctx = CleaningContext(dirty=result.dirty, clean=clean, seed=2)
        detected = detector.detect(ctx)
        scores = detection_scores(detected.cells, result.error_cells)
        assert scores.f1 > 0.5, f"{detector.name} f1 {scores.f1}"

    def test_ml_detectors_need_oracle(self):
        _, result = self._dirty(seed=26)
        ctx = CleaningContext(dirty=result.dirty)  # no ground truth
        for detector in (
            MetadataDrivenDetector(),
            RahaDetector(),
            ED2Detector(),
        ):
            assert detector.detect(ctx).n_detected == 0

    def test_picket_self_supervised_no_oracle_needed(self):
        clean, result = self._dirty(seed=27)
        ctx = CleaningContext(dirty=result.dirty)
        detected = PicketDetector().detect(ctx)
        scores = detection_scores(detected.cells, result.error_cells)
        assert scores.recall > 0.3

    def test_picket_memory_boundary(self):
        clean = base_table(n=30, seed=28)
        detector = PicketDetector(max_rows=10)
        with pytest.raises(MemoryError):
            detector.detect(CleaningContext(dirty=clean))

    def test_validation(self):
        with pytest.raises(ValueError):
            MetadataDrivenDetector(label_budget=1)
        with pytest.raises(ValueError):
            RahaDetector(labels_per_column=1)
        with pytest.raises(ValueError):
            ED2Detector(labels_per_column=2)
        with pytest.raises(ValueError):
            PicketDetector(numeric_residual_sigmas=0)


class TestRegistry:
    def test_nineteen_detectors(self):
        detectors = all_detectors()
        assert len(detectors) == 19
        names = [d.name for d in detectors]
        assert len(set(names)) == 19

    def test_registry_keys(self):
        registry = detector_registry()
        for expected in ("KATARA", "NADEEF", "FAHES", "HoloClean", "dBoost",
                         "OpenRefine", "IF", "SD", "IQR", "MVD",
                         "KeyCollision", "ZeroER", "CleanLab", "Min-K",
                         "MaxEntropy", "Meta", "RAHA", "ED2", "Picket"):
            assert expected in registry

    def test_categories(self):
        from repro.detectors import ML_SUPPORTED, NON_LEARNING

        registry = detector_registry()
        assert registry["RAHA"].category == ML_SUPPORTED
        assert registry["SD"].category == NON_LEARNING
        ml_count = sum(
            1 for d in registry.values() if d.category == ML_SUPPORTED
        )
        assert ml_count == 4
