"""Focused tests for the ensemble detectors' aggregation mechanics."""

import numpy as np
import pytest

from repro.context import CleaningContext
from repro.dataset import CATEGORICAL, NUMERICAL, Schema, Table
from repro.detectors import MaxEntropyDetector, MinKDetector
from repro.detectors.base import Detector


class _FixedDetector(Detector):
    """Test double returning a fixed cell set."""

    tackles = frozenset({"holistic"})

    def __init__(self, name, cells):
        self.name = name
        self._cells = set(cells)

    def _detect(self, context):
        return set(self._cells)


@pytest.fixture
def context():
    schema = Schema.from_pairs([("x", NUMERICAL)])
    table = Table(schema, {"x": [float(i) for i in range(10)]})
    return CleaningContext(dirty=table)


class TestMinKAggregation:
    def test_vote_counting(self, context):
        a = _FixedDetector("A", {(0, "x"), (1, "x")})
        b = _FixedDetector("B", {(1, "x"), (2, "x")})
        c = _FixedDetector("C", {(1, "x")})
        detector = MinKDetector(k=2, base_detectors=[a, b, c], trusted=())
        cells = detector.detect(context).cells
        assert cells == {(1, "x")}

    def test_k_one_is_union(self, context):
        a = _FixedDetector("A", {(0, "x")})
        b = _FixedDetector("B", {(5, "x")})
        detector = MinKDetector(k=1, base_detectors=[a, b], trusted=())
        assert detector.detect(context).cells == {(0, "x"), (5, "x")}

    def test_trusted_bypasses_votes(self, context):
        a = _FixedDetector("A", {(0, "x")})
        b = _FixedDetector("B", {(5, "x")})
        detector = MinKDetector(k=2, base_detectors=[a, b], trusted=("A",))
        # A's cells survive despite having one vote; B's do not.
        assert detector.detect(context).cells == {(0, "x")}

    def test_threshold_capped_by_active_detectors(self, context):
        a = _FixedDetector("A", {(3, "x")})
        silent = _FixedDetector("B", set())
        detector = MinKDetector(k=3, base_detectors=[a, silent], trusted=())
        # Only one detector fired; demanding 3 votes would be vacuous, so
        # the threshold caps at the number of active detectors.
        assert detector.detect(context).cells == {(3, "x")}


class TestMaxEntropyOrdering:
    def test_informative_detector_selected_first(self, context):
        big = _FixedDetector("Big", {(i, "x") for i in range(6)})
        small = _FixedDetector("Small", {(0, "x")})
        detector = MaxEntropyDetector(base_detectors=[small, big])
        cells = detector.detect(context).cells
        assert cells == {(i, "x") for i in range(6)}
        assert detector.execution_order_[0] == "Big"

    def test_stops_when_no_new_information(self, context):
        a = _FixedDetector("A", {(0, "x"), (1, "x"), (2, "x")})
        duplicate = _FixedDetector("Dup", {(0, "x"), (1, "x"), (2, "x")})
        fresh = _FixedDetector("Fresh", {(9, "x")})
        detector = MaxEntropyDetector(
            base_detectors=[a, duplicate, fresh], min_new_fraction=0.05
        )
        cells = detector.detect(context).cells
        # Fresh contributes new cells and is included; Dup adds nothing.
        assert (9, "x") in cells
        assert "Dup" not in detector.execution_order_ or (
            detector.execution_order_.index("Dup")
            > detector.execution_order_.index("Fresh")
        )

    def test_all_silent(self, context):
        silent = [_FixedDetector(f"S{i}", set()) for i in range(3)]
        detector = MaxEntropyDetector(base_detectors=silent)
        assert detector.detect(context).cells == set()
