"""Tests for the error-injection engines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import DenialConstraint, FunctionalDependency, Predicate
from repro.dataset import CATEGORICAL, NUMERICAL, Schema, Table
from repro.dataset.table import coerce_float, is_missing
from repro.errors import (
    BartEngine,
    CompositeInjector,
    DuplicateInjector,
    GaussianNoiseInjector,
    ImplicitMissingInjector,
    InconsistencyInjector,
    MislabelInjector,
    MissingValueInjector,
    OutlierInjector,
    SwapInjector,
    TypoInjector,
)
from repro.errors import profile


def make_clean_table(n=120, seed=0):
    rng = np.random.default_rng(seed)
    schema = Schema.from_pairs(
        [
            ("amount", NUMERICAL),
            ("score", NUMERICAL),
            ("city", CATEGORICAL),
            ("label", CATEGORICAL),
        ]
    )
    cities = ["berlin", "munich", "hamburg", "cologne"]
    return Table(
        schema,
        {
            "amount": rng.normal(100.0, 10.0, size=n).tolist(),
            "score": rng.uniform(0.0, 1.0, size=n).tolist(),
            "city": [cities[int(rng.integers(4))] for _ in range(n)],
            "label": [("yes" if rng.uniform() < 0.5 else "no") for _ in range(n)],
        },
    )


RNG = lambda seed=0: np.random.default_rng(seed)


class TestMaskConsistency:
    """Every injector's mask must equal the actual clean-vs-dirty diff."""

    @pytest.mark.parametrize(
        "injector",
        [
            MissingValueInjector(),
            ImplicitMissingInjector(),
            OutlierInjector(degree=4.0),
            GaussianNoiseInjector(),
            TypoInjector(columns=["city"]),
            SwapInjector(columns=["city", "amount"]),
            InconsistencyInjector(),
            DuplicateInjector(),
            MislabelInjector("label"),
        ],
        ids=lambda i: type(i).__name__,
    )
    def test_mask_matches_diff(self, injector):
        clean = make_clean_table(seed=1)
        result = injector.inject(clean, 0.1, RNG(2))
        diff = clean.diff_cells(result.dirty)
        assert result.error_cells == diff
        assert result.error_cells, f"{type(injector).__name__} injected nothing"

    def test_rate_respected_cellwise(self):
        clean = make_clean_table()
        result = MissingValueInjector().inject(clean, 0.2, RNG(3))
        expected = 0.2 * clean.n_rows * clean.n_columns
        assert abs(len(result.error_cells) - expected) <= 2

    def test_zero_rate_injects_nothing(self):
        clean = make_clean_table()
        result = OutlierInjector().inject(clean, 0.0, RNG(0))
        assert result.error_cells == set()
        assert result.dirty == clean

    def test_invalid_rate(self):
        clean = make_clean_table()
        with pytest.raises(ValueError):
            MissingValueInjector().inject(clean, 1.5, RNG(0))


class TestIndividualInjectors:
    def test_missing_cells_are_none(self):
        clean = make_clean_table()
        result = MissingValueInjector().inject(clean, 0.1, RNG(4))
        for row, col in result.error_cells:
            assert is_missing(result.dirty.get_cell(row, col))

    def test_implicit_missing_not_flagged_as_missing(self):
        clean = make_clean_table()
        result = ImplicitMissingInjector().inject(clean, 0.1, RNG(5))
        for row, col in result.error_cells:
            assert not is_missing(result.dirty.get_cell(row, col))

    def test_outlier_degree_controls_distance(self):
        clean = make_clean_table()
        near = OutlierInjector(columns=["amount"], degree=2.0).inject(
            clean, 0.1, RNG(6)
        )
        far = OutlierInjector(columns=["amount"], degree=8.0).inject(
            clean, 0.1, RNG(6)
        )
        values = clean.as_float("amount")
        mean, std = values.mean(), values.std()

        def mean_distance(result):
            distances = [
                abs(coerce_float(result.dirty.get_cell(r, c)) - mean) / std
                for r, c in result.error_cells
            ]
            return np.mean(distances)

        assert mean_distance(far) > mean_distance(near) + 3.0

    def test_outlier_skips_categorical(self):
        clean = make_clean_table()
        result = OutlierInjector().inject(clean, 0.1, RNG(7))
        assert all(c in ("amount", "score") for _, c in result.error_cells)

    def test_typo_on_numeric_becomes_text(self):
        clean = make_clean_table()
        result = TypoInjector(columns=["amount"]).inject(clean, 0.2, RNG(8))
        corrupted_to_text = sum(
            1
            for r, c in result.error_cells
            if np.isnan(coerce_float(result.dirty.get_cell(r, c)))
        )
        assert corrupted_to_text > 0

    def test_swap_preserves_multiset(self):
        clean = make_clean_table()
        result = SwapInjector(columns=["city"]).inject(clean, 0.2, RNG(9))
        assert sorted(map(str, clean.column("city"))) == sorted(
            map(str, result.dirty.column("city"))
        )

    def test_inconsistency_variants_same_entity(self):
        clean = make_clean_table()
        result = InconsistencyInjector(columns=["city"]).inject(clean, 0.2, RNG(10))
        for row, col in result.error_cells:
            original = str(clean.get_cell(row, col))
            variant = str(result.dirty.get_cell(row, col))
            # The variant shares a prefix with the original entity
            # (case-insensitively), so clustering can recover it.
            assert variant.lower()[:2] == original.lower()[:2]

    def test_duplicates_create_key_collisions(self):
        clean = make_clean_table()
        injector = DuplicateInjector(fuzziness=0.0)
        result = injector.inject(clean, 0.2, RNG(11))
        rows = [tuple(map(str, result.dirty.row(i))) for i in range(result.dirty.n_rows)]
        assert len(set(rows)) < len(rows)

    def test_duplicate_rate_rows(self):
        clean = make_clean_table(n=100)
        result = DuplicateInjector(fuzziness=0.0).inject(clean, 0.1, RNG(12))
        victim_rows = {r for r, _ in result.error_cells}
        assert 5 <= len(victim_rows) <= 10

    def test_mislabel_changes_only_label(self):
        clean = make_clean_table()
        result = MislabelInjector("label").inject(clean, 0.2, RNG(13))
        assert all(c == "label" for _, c in result.error_cells)
        assert len(result.error_cells) == pytest.approx(0.2 * clean.n_rows, abs=1)

    def test_mislabel_unknown_column(self):
        clean = make_clean_table()
        with pytest.raises(KeyError):
            MislabelInjector("nope").inject(clean, 0.1, RNG(0))

    def test_mislabel_single_class_noop(self):
        schema = Schema.from_pairs([("label", CATEGORICAL)])
        table = Table(schema, {"label": ["x"] * 10})
        result = MislabelInjector("label").inject(table, 0.5, RNG(0))
        assert result.error_cells == set()

    def test_injector_validation(self):
        with pytest.raises(ValueError):
            OutlierInjector(degree=0)
        with pytest.raises(ValueError):
            GaussianNoiseInjector(scale=0)
        with pytest.raises(ValueError):
            DuplicateInjector(fuzziness=2.0)
        with pytest.raises(ValueError):
            CompositeInjector([])


class TestComposite:
    def test_masks_disjoint_by_type(self):
        clean = make_clean_table()
        composite = CompositeInjector(
            [MissingValueInjector(), OutlierInjector(), TypoInjector(columns=["city"])]
        )
        result = composite.inject(clean, 0.15, RNG(14))
        types = [t for t, cells in result.cells_by_type.items() if cells]
        assert len(types) >= 2
        all_cells = [c for cells in result.cells_by_type.values() for c in cells]
        assert len(all_cells) == len(set(all_cells))

    def test_composite_mask_matches_diff(self):
        clean = make_clean_table()
        composite = CompositeInjector(
            [MissingValueInjector(), GaussianNoiseInjector()]
        )
        result = composite.inject(clean, 0.1, RNG(15))
        assert result.error_cells == clean.diff_cells(result.dirty)


class TestInjectionResult:
    def test_error_rate(self):
        clean = make_clean_table(n=50)
        result = MissingValueInjector().inject(clean, 0.1, RNG(16))
        assert result.error_rate() == pytest.approx(0.1, abs=0.02)

    def test_error_types(self):
        clean = make_clean_table()
        result = OutlierInjector().inject(clean, 0.1, RNG(17))
        assert result.error_types == {profile.OUTLIER}


class TestBart:
    def _fd_constraint(self):
        return FunctionalDependency(("city",), "label").to_denial_constraint()

    def test_fd_violations_injected(self):
        schema = Schema.from_pairs([("city", CATEGORICAL), ("label", CATEGORICAL)])
        cities = ["a", "b", "c"] * 30
        table = Table(
            schema,
            {"city": cities, "label": [f"L{c}" for c in cities]},
        )
        engine = BartEngine([self._fd_constraint()])
        result = engine.inject(table, 0.1, RNG(18))
        assert result.error_cells
        # Every injected cell now participates in a real FD violation.
        fd = FunctionalDependency(("city",), "label")
        violating = fd.violations(result.dirty)
        assert result.error_cells <= violating

    def test_unary_range_violations(self):
        clean = make_clean_table()
        dc = DenialConstraint([Predicate("score", ">", constant=1.0)])
        engine = BartEngine([dc], hardness=1.0)
        result = engine.inject(clean, 0.05, RNG(19))
        assert result.error_cells
        for row, col in result.error_cells:
            assert coerce_float(result.dirty.get_cell(row, col)) > 1.0

    def test_hardness_controls_margin(self):
        clean = make_clean_table()
        dc = DenialConstraint([Predicate("score", ">", constant=1.0)])
        easy = BartEngine([dc], hardness=1.0).inject(clean, 0.05, RNG(20))
        hard = BartEngine([dc], hardness=0.0).inject(clean, 0.05, RNG(20))

        def mean_excess(result):
            return np.mean(
                [
                    coerce_float(result.dirty.get_cell(r, c)) - 1.0
                    for r, c in result.error_cells
                ]
            )

        assert mean_excess(easy) > mean_excess(hard)

    def test_validation(self):
        with pytest.raises(ValueError):
            BartEngine([])
        with pytest.raises(ValueError):
            BartEngine([self._fd_constraint()], hardness=2.0)
        engine = BartEngine([self._fd_constraint()])
        with pytest.raises(ValueError):
            engine.inject(make_clean_table(), -0.1, RNG(0))


@given(
    rate=st.floats(min_value=0.0, max_value=0.4),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=20, deadline=None)
def test_property_mask_always_matches_diff(rate, seed):
    clean = make_clean_table(n=40, seed=seed % 7)
    injector = CompositeInjector(
        [MissingValueInjector(), OutlierInjector(), InconsistencyInjector()]
    )
    result = injector.inject(clean, rate, np.random.default_rng(seed))
    assert result.error_cells == clean.diff_cells(result.dirty)
