"""Tests for the declarative experiment configuration runner."""

import json

import pytest

from repro.benchmark.config import ExperimentConfig, ExperimentReport, run_experiment


class TestConfig:
    def test_json_round_trip(self):
        config = ExperimentConfig(
            dataset="Nasa", n_rows=120, detectors=["MVD"], repairs=["GT"],
            models=["Ridge"], scenarios=["S1", "S4"], n_seeds=2,
        )
        clone = ExperimentConfig.from_json(config.to_json())
        assert clone == config

    def test_validation(self):
        with pytest.raises(ValueError, match="dataset"):
            ExperimentConfig(dataset="Ghost")
        with pytest.raises(ValueError, match="detector"):
            ExperimentConfig(dataset="Nasa", detectors=["GhostDetector"])
        with pytest.raises(ValueError, match="repair"):
            ExperimentConfig(dataset="Nasa", repairs=["GhostRepair"])
        with pytest.raises(ValueError, match="n_seeds"):
            ExperimentConfig(dataset="Nasa", n_seeds=0)

    def test_json_is_plain_data(self):
        config = ExperimentConfig(dataset="Beers", n_rows=60)
        payload = json.loads(config.to_json())
        assert payload["dataset"] == "Beers"
        assert payload["scenarios"] == ["S1", "S4"]


class TestRunExperiment:
    def test_explicit_pipeline(self):
        config = ExperimentConfig(
            dataset="Nasa", n_rows=150, seed=1,
            detectors=["MVD", "SD"],
            repairs=["GT", "Impute-Mean"],
            models=["Ridge"],
            scenarios=["S1", "S4"],
            n_seeds=2,
        )
        report = run_experiment(config)
        assert len(report.detection_runs) == 2
        # 2 detectors x 2 repairs (assuming both detected something).
        active = [r for r in report.detection_runs if r.result.n_detected]
        assert len(report.repair_runs) == len(active) * 2
        # dirty + repaired variants, 1 model.
        assert len(report.evaluations) == 1 + len(report.repair_runs)
        text = report.render()
        assert "detection" in text and "repair grid" in text and "modeling" in text

    def test_controller_defaults(self):
        config = ExperimentConfig(
            dataset="SmartFactory", n_rows=120, seed=0,
            detectors=["MVD"], models=[], n_seeds=1,
        )
        # repairs=None -> controller picks generic repairs automatically.
        report = run_experiment(config)
        assert report.repair_runs
        assert report.evaluations == []

    def test_ml_oriented_repairs_rejected(self):
        config = ExperimentConfig(
            dataset="Adult", n_rows=100, detectors=["MVD"],
            repairs=["ActiveClean"], models=[],
        )
        with pytest.raises(ValueError, match="ML-oriented"):
            run_experiment(config)

    def test_bad_model_name_fails_fast(self):
        config = ExperimentConfig(
            dataset="Nasa", n_rows=100, detectors=["MVD"], repairs=["GT"],
            models=["GhostModel"], n_seeds=1,
        )
        with pytest.raises(KeyError):
            run_experiment(config)
