"""The README's extension contract: new datasets, detectors, repair
methods, and models plug in without touching framework code."""

import numpy as np
import pytest

from repro.benchmark import BenchmarkController, run_detection_suite, run_repair_suite
from repro.context import CleaningContext
from repro.datagen.benchmark_dataset import BenchmarkDataset
from repro.dataset import CATEGORICAL, NUMERICAL, Schema, Table
from repro.detectors.base import NON_LEARNING, Detector
from repro.errors import MissingValueInjector, profile
from repro.ml.model_zoo import ModelSpec
from repro.repair import RepairMethod
from repro.tuning import Integer, SearchSpace


class EvenRowDetector(Detector):
    """Toy custom detector: flags numeric cells on even rows."""

    name = "EvenRows"
    category = NON_LEARNING
    tackles = frozenset({"holistic"})

    def _detect(self, context):
        table = context.dirty
        return {
            (i, column)
            for column in table.schema.numerical_names
            for i in range(0, table.n_rows, 2)
        }


class ConstantRepair(RepairMethod):
    """Toy custom repair: sets every detected cell to a constant."""

    name = "Constant42"

    def _repair(self, context, detections):
        repaired = context.dirty.copy()
        for row, column in detections:
            repaired.set_cell(row, column, 42.0)
        return repaired


def custom_dataset(seed=0):
    rng = np.random.default_rng(seed)
    schema = Schema.from_pairs([("x", NUMERICAL), ("c", CATEGORICAL)])
    clean = Table(
        schema,
        {
            "x": rng.normal(size=30).tolist(),
            "c": [f"v{int(rng.integers(2))}" for _ in range(30)],
        },
    )
    result = MissingValueInjector().inject(clean, 0.1, rng)
    return BenchmarkDataset(
        name="Custom",
        clean=clean,
        dirty=result.dirty,
        cells_by_type=result.cells_by_type,
        task="classification",
        target="c",
    )


class TestCustomDataset:
    def test_flows_through_pipeline(self):
        dataset = custom_dataset()
        runs = run_detection_suite(dataset, [EvenRowDetector()])
        assert runs[0].result.n_detected == 15
        repair_runs = run_repair_suite(
            dataset, {"EvenRows": set(runs[0].result.cells)}, [ConstantRepair()]
        )
        assert not repair_runs[0].failed
        repaired = repair_runs[0].result.repaired
        assert repaired.get_cell(0, "x") == 42.0

    def test_controller_accepts_custom_pools(self):
        dataset = custom_dataset()
        controller = BenchmarkController(
            detectors=[EvenRowDetector()], repairs=[ConstantRepair()]
        )
        plan = controller.experiment_plan(dataset)
        assert plan["detectors"] == ["EvenRows"]
        assert plan["repairs"] == ["Constant42"]


class TestCustomModelSpec:
    def test_registered_spec_tunes_and_builds(self):
        from repro.ml.neighbors import KNNClassifier

        spec = ModelSpec(
            name="MyKNN",
            task="classification",
            factory=KNNClassifier,
            space=SearchSpace({"n_neighbors": Integer(1, 9)}),
        )
        rng = np.random.default_rng(0)
        params = spec.space.sample(rng)
        model = spec.build(**params)
        features = rng.normal(size=(40, 3))
        labels = (features[:, 0] > 0).astype(int)
        model.fit(features, labels)
        assert model.score(features, labels) > 0.7

    def test_underscore_params_dropped_by_build(self):
        from repro.ml.linear import LinearRegression

        spec = ModelSpec(
            name="OLS",
            task="regression",
            factory=LinearRegression,
            space=SearchSpace({"_dummy": Integer(0, 1)}),
        )
        model = spec.build(_dummy=1)
        assert isinstance(model, LinearRegression)


class TestDetectionRestriction:
    def test_restricted_to_columns(self):
        dataset = custom_dataset()
        run = run_detection_suite(dataset, [EvenRowDetector()])[0]
        restricted = run.result.restricted_to_columns(["c"])
        assert restricted.n_detected == 0
        restricted_x = run.result.restricted_to_columns(["x"])
        assert restricted_x.n_detected == run.result.n_detected
