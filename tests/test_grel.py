"""Tests for the GREL expression engine and its OpenRefine integration."""

import math

import pytest

from repro.context import CleaningContext
from repro.dataset import CATEGORICAL, NUMERICAL, Schema, Table
from repro.repair import OpenRefineRepair
from repro.repair.grel import GrelError, GrelExpression, tokenize


class TestTokenizer:
    def test_basic(self):
        tokens = tokenize('value.trim() + "x"')
        assert [t.text for t in tokens] == [
            "value", ".", "trim", "(", ")", "+", '"x"'
        ]

    def test_bad_character(self):
        with pytest.raises(GrelError):
            tokenize("value @ 2")


class TestEvaluation:
    @pytest.mark.parametrize(
        "source,value,expected",
        [
            ("value.trim()", "  hi  ", "hi"),
            ("value.toLowercase()", "ABC", "abc"),
            ("value.toUppercase()", "abc", "ABC"),
            ("value.toTitlecase()", "new york", "New York"),
            ('value.replace("_", " ")', "a_b_c", "a b c"),
            ("value.substring(1, 3)", "abcdef", "bc"),
            ("value.length()", "abcd", 4),
            ('value.startsWith("ab")', "abc", True),
            ('value.endsWith("bc")', "abc", True),
            ('value.contains("b")', "abc", True),
            ('value.split("-")', "a-b", ["a", "b"]),
            ("value.toNumber()", "3.5", 3.5),
            ("value + 1", 2.0, 3.0),
            ("value * 2 + 1", 3.0, 7.0),
            ("(value + 1) * 2", 3.0, 8.0),
            ("value - 1 - 1", 5.0, 3.0),
            ("value / 2", 5.0, 2.5),
            ("-value", 4.0, -4.0),
            ('"a" + "b"', None, "ab"),
            ("value == 3", 3.0, True),
            ("value != 3", 3.0, False),
            ("value > 2", 3.0, True),
            ("value <= 3", 3.0, True),
            ('if(value > 2, "big", "small")', 5.0, "big"),
            ('if(isBlank(value), "unknown", value)', None, "unknown"),
            ('if(isBlank(value), "unknown", value)', "x", "x"),
            ('coalesce(value, "fallback")', None, "fallback"),
            ('coalesce(value, "fallback")', "real", "real"),
            ('concat("a", value, "c")', "b", "abc"),
        ],
    )
    def test_expression(self, source, value, expected):
        result = GrelExpression(source).evaluate(value)
        assert result == expected

    def test_chained_methods(self):
        expr = GrelExpression('value.trim().toLowercase().replace("_", " ")')
        assert expr.evaluate("  NEW_YORK ") == "new york"

    def test_cells_access(self):
        expr = GrelExpression('cells["city"].value + ", " + cells["state"].value')
        result = expr.evaluate(None, cells={"city": "austin", "state": "TX"})
        assert result == "austin, TX"

    def test_numeric_string_addition_prefers_string_when_string_literal(self):
        assert GrelExpression('value + "!"').evaluate(3.0) == "3.0!"

    def test_string_comparison(self):
        assert GrelExpression('value < "b"').evaluate("a") is True

    def test_escaped_quotes(self):
        assert GrelExpression('"say \\"hi\\""').evaluate(None) == 'say "hi"'


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "value.",               # dangling dot
            "value.unknownMethod()",
            "unknownFunction(1)",
            "value +",              # incomplete
            "(value",               # unbalanced
            "value 2",              # trailing input
            "ghostVariable",
            'value / "abc"',
            "value / 0",
        ],
    )
    def test_raises_grel_error(self, source):
        expr_error = False
        try:
            GrelExpression(source).evaluate(1.0)
        except GrelError:
            expr_error = True
        assert expr_error

    def test_unknown_column(self):
        expr = GrelExpression('cells["ghost"].value')
        with pytest.raises(GrelError):
            expr.evaluate(None, cells={"real": 1})


class TestTableIntegration:
    def _table(self):
        schema = Schema.from_pairs([("city", CATEGORICAL), ("n", NUMERICAL)])
        return Table(
            schema,
            {"city": [" Berlin ", "MUNICH", "hamburg"], "n": [1.0, 2.0, 3.0]},
        )

    def test_apply_to_column(self):
        table = self._table()
        expr = GrelExpression("value.trim().toLowercase()")
        out = expr.apply_to_column(table, "city")
        assert list(out.column("city")) == ["berlin", "munich", "hamburg"]
        # Original untouched.
        assert table.get_cell(0, "city") == " Berlin "

    def test_openrefine_repair_with_grel_transforms(self):
        table = self._table()
        ctx = CleaningContext(dirty=table)
        repair = OpenRefineRepair(
            transforms={"city": "value.trim().toLowercase()"}
        )
        detections = {(0, "city"), (1, "city")}
        repaired = repair.repair(ctx, detections).repaired
        assert repaired.get_cell(0, "city") == "berlin"
        assert repaired.get_cell(1, "city") == "munich"
        # Undetected cells are left alone.
        assert repaired.get_cell(2, "city") == "hamburg"

    def test_bad_transform_is_skipped_not_fatal(self):
        table = self._table()
        ctx = CleaningContext(dirty=table)
        repair = OpenRefineRepair(transforms={"city": 'cells["ghost"].value'})
        repaired = repair.repair(ctx, {(0, "city")}).repaired
        assert repaired.get_cell(0, "city") == " Berlin "
