"""Cross-module integration tests: the full REIN pipeline end to end.

Dataset generation -> controller pruning -> detection -> repair ->
scenario evaluation -> repository persistence, on multiple task types.
"""

import math

import numpy as np
import pytest

from repro.benchmark import (
    BenchmarkController,
    evaluate_scenarios,
    run_detection_suite,
    run_repair_suite,
    run_scenario,
)
from repro.datagen import generate
from repro.detectors import MaxEntropyDetector, MVDetector
from repro.metrics import repair_rmse
from repro.repair import (
    GroundTruthRepair,
    MeanModeImputeRepair,
    MissForestMixRepair,
    RepairMethod,
)
from repro.repository import DataRepository, ResultsStore
from repro.repository.store import DIRTY, GROUND_TRUTH, REPAIRED, ResultRecord


class TestClassificationPipeline:
    def test_end_to_end_smart_factory(self):
        dataset = generate("SmartFactory", n_rows=250, seed=42)
        controller = BenchmarkController()
        detectors = controller.applicable_detectors(dataset)
        assert detectors

        # Detection stage (subset for speed).
        quick = [d for d in detectors if d.name in ("MVD", "SD", "MaxEntropy")]
        detection_runs = run_detection_suite(dataset, quick, seed=0)
        best = max(
            (r for r in detection_runs if not r.failed),
            key=lambda r: r.scores.f1,
        )
        assert best.scores.f1 > 0.3

        # Repair stage.
        repairs = [
            m for m in controller.applicable_repairs(dataset)
            if m.name in ("GT", "Impute-Mean", "MISS-Mix")
            and isinstance(m, RepairMethod)
        ]
        repair_runs = run_repair_suite(
            dataset, {best.detector: set(best.result.cells)}, repairs, seed=0
        )
        ok = [r for r in repair_runs if not r.failed]
        assert len(ok) == len(repairs)
        gt_run = next(r for r in ok if r.repair == "GT")
        assert gt_run.numerical_rmse < repair_rmse(dataset.dirty, dataset.clean)

        # Modeling stage: repaired version's S1 should approach S4.
        repaired = gt_run.result.repaired
        evaluation = evaluate_scenarios(
            dataset, repaired, gt_run.strategy, "DT",
            scenario_names=("S1", "S4"), n_seeds=3,
        )
        assert evaluation.mean("S1") > evaluation.mean("S4") - 0.25

    def test_versions_round_trip_through_repository(self):
        dataset = generate("Beers", n_rows=120, seed=1)
        context = dataset.context(seed=0)
        detected = MVDetector().detect(context)
        repaired = MeanModeImputeRepair().repair(
            context, detected.cells
        ).repaired
        with DataRepository() as repo:
            repo.save_version(dataset.name, GROUND_TRUTH, dataset.clean)
            repo.save_version(dataset.name, DIRTY, dataset.dirty)
            repo.save_version(
                dataset.name, REPAIRED, repaired, variant="MVD+Impute-Mean"
            )
            loaded = repo.load_version(
                dataset.name, REPAIRED, variant="MVD+Impute-Mean"
            )
            # The loaded version trains a model identically to the original.
            direct = run_scenario("S1", repaired, dataset, "DT", seed=0)
            via_repo = run_scenario("S1", loaded, dataset, "DT", seed=0)
            assert direct == pytest.approx(via_repo, abs=0.05)


class TestRegressionPipeline:
    def test_cleaning_improves_regression(self):
        dataset = generate("Nasa", n_rows=300, seed=2)
        context = dataset.context(seed=0)
        detected = MaxEntropyDetector().detect(context)
        repaired = GroundTruthRepair().repair(context, detected.cells).repaired
        dirty_rmse = run_scenario("S1", dataset.dirty, dataset, "Ridge", seed=0)
        repaired_rmse = run_scenario("S1", repaired, dataset, "Ridge", seed=0)
        clean_rmse = run_scenario("S4", dataset.dirty, dataset, "Ridge", seed=0)
        assert repaired_rmse <= dirty_rmse + 0.05
        assert clean_rmse <= dirty_rmse


class TestClusteringPipeline:
    def test_cleaning_improves_clustering(self):
        dataset = generate("Water", n_rows=200, seed=3)
        context = dataset.context(seed=0)
        detected = MaxEntropyDetector().detect(context)
        repaired = GroundTruthRepair().repair(context, detected.cells).repaired
        s1_repaired = run_scenario("S1", repaired, dataset, "KMeans", seed=0)
        s4 = run_scenario("S4", dataset.dirty, dataset, "KMeans", seed=0)
        # Repaired clustering lands in the same band as the ground truth.
        assert s1_repaired > s4 - 0.35


class TestResultsLogging:
    def test_experiment_records_accumulate(self):
        dataset = generate("Nasa", n_rows=150, seed=4)
        with ResultsStore() as store:
            runs = run_detection_suite(dataset, [MVDetector()], seed=0)
            for run in runs:
                store.add(ResultRecord(
                    dataset.name, "detection", run.detector, "f1",
                    run.scores.f1,
                ))
                store.add(ResultRecord(
                    dataset.name, "detection", run.detector, "runtime",
                    run.result.runtime_seconds,
                ))
            assert store.count() == 2
            means = store.mean_by_method(dataset.name, "detection", "f1")
            assert "MVD" in means


class TestRobustnessToSeeds:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_pipeline_deterministic_per_seed(self, seed):
        dataset_a = generate("SmartFactory", n_rows=120, seed=seed)
        dataset_b = generate("SmartFactory", n_rows=120, seed=seed)
        ctx_a, ctx_b = dataset_a.context(seed=9), dataset_b.context(seed=9)
        cells_a = MaxEntropyDetector().detect(ctx_a).cells
        cells_b = MaxEntropyDetector().detect(ctx_b).cells
        assert cells_a == cells_b
