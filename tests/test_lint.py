"""Repo hygiene checks enforced as part of tier-1."""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_clocks  # noqa: E402
import check_exceptions  # noqa: E402


def test_no_broad_exception_handlers_outside_sanctioned_sites():
    violations = check_exceptions.check_tree(REPO_ROOT / "src")
    assert violations == [], "\n".join(violations)


def test_lint_flags_broad_handler(tmp_path):
    bad = tmp_path / "repro" / "bad.py"
    bad.parent.mkdir()
    bad.write_text("try:\n    pass\nexcept Exception:\n    pass\n")
    violations = check_exceptions.check_tree(tmp_path)
    assert len(violations) == 1
    assert "bad.py:3" in violations[0]


def test_lint_flags_bare_except(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("try:\n    pass\nexcept:\n    pass\n")
    violations = check_exceptions.check_tree(tmp_path)
    assert len(violations) == 1
    assert "bare except" in violations[0]


def test_lint_honours_allowlist(tmp_path):
    site = tmp_path / "repro" / "resilience" / "guards.py"
    site.parent.mkdir(parents=True)
    site.write_text("try:\n    pass\nexcept Exception:\n    pass\n")
    assert check_exceptions.check_tree(tmp_path) == []


def test_lint_cli_exit_codes(tmp_path, capsys):
    assert check_exceptions.main(["prog", str(tmp_path)]) == 0
    (tmp_path / "bad.py").write_text(
        "try:\n    pass\nexcept Exception:\n    pass\n"
    )
    assert check_exceptions.main(["prog", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "bad.py:3" in out


def test_lint_rejects_missing_directory(tmp_path):
    assert check_exceptions.main(["prog", str(tmp_path / "nope")]) == 2


def test_no_wall_clock_timing_in_src():
    violations = check_clocks.check_tree(REPO_ROOT / "src")
    assert violations == [], "\n".join(violations)


def test_clock_lint_flags_call_reference_and_import(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import time\n"
        "from time import time as now\n"
        "started = time.time()\n"
        "clock = time.time\n"
    )
    violations = check_clocks.check_tree(tmp_path)
    lines = {v.split(": ", 1)[1].split(" is ")[0] for v in violations}
    assert len(violations) == 3, "\n".join(violations)
    assert lines == {
        "time.time() call", "time.time reference", "'from time import time'"
    }


def test_clock_lint_allows_monotonic_clocks(tmp_path):
    good = tmp_path / "good.py"
    good.write_text(
        "import time\n"
        "from datetime import datetime, timezone\n"
        "t0 = time.perf_counter()\n"
        "t1 = time.monotonic()\n"
        "wall = datetime.now(timezone.utc)\n"
    )
    assert check_clocks.check_tree(tmp_path) == []


def test_clock_lint_cli_exit_codes(tmp_path, capsys):
    assert check_clocks.main(["prog", str(tmp_path)]) == 0
    (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
    assert check_clocks.main(["prog", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "bad.py:2" in out
    assert check_clocks.main(["prog", str(tmp_path / "nope")]) == 2
