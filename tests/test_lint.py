"""Repo hygiene checks enforced as part of tier-1."""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_block_paths  # noqa: E402
import check_clocks  # noqa: E402
import check_dataplane  # noqa: E402
import check_exceptions  # noqa: E402
import check_hot_loops  # noqa: E402
import check_service_endpoints  # noqa: E402


def test_no_broad_exception_handlers_outside_sanctioned_sites():
    violations = check_exceptions.check_tree(REPO_ROOT / "src")
    assert violations == [], "\n".join(violations)


def test_lint_flags_broad_handler(tmp_path):
    bad = tmp_path / "repro" / "bad.py"
    bad.parent.mkdir()
    bad.write_text("try:\n    pass\nexcept Exception:\n    pass\n")
    violations = check_exceptions.check_tree(tmp_path)
    assert len(violations) == 1
    assert "bad.py:3" in violations[0]


def test_lint_flags_bare_except(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("try:\n    pass\nexcept:\n    pass\n")
    violations = check_exceptions.check_tree(tmp_path)
    assert len(violations) == 1
    assert "bare except" in violations[0]


def test_lint_honours_allowlist(tmp_path):
    site = tmp_path / "repro" / "resilience" / "guards.py"
    site.parent.mkdir(parents=True)
    site.write_text("try:\n    pass\nexcept Exception:\n    pass\n")
    assert check_exceptions.check_tree(tmp_path) == []


def test_lint_cli_exit_codes(tmp_path, capsys):
    assert check_exceptions.main(["prog", str(tmp_path)]) == 0
    (tmp_path / "bad.py").write_text(
        "try:\n    pass\nexcept Exception:\n    pass\n"
    )
    assert check_exceptions.main(["prog", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "bad.py:3" in out


def test_lint_rejects_missing_directory(tmp_path):
    assert check_exceptions.main(["prog", str(tmp_path / "nope")]) == 2


def test_no_wall_clock_timing_in_src():
    violations = check_clocks.check_tree(REPO_ROOT / "src")
    assert violations == [], "\n".join(violations)


def test_clock_lint_flags_call_reference_and_import(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import time\n"
        "from time import time as now\n"
        "started = time.time()\n"
        "clock = time.time\n"
    )
    violations = check_clocks.check_tree(tmp_path)
    lines = {v.split(": ", 1)[1].split(" is ")[0] for v in violations}
    assert len(violations) == 3, "\n".join(violations)
    assert lines == {
        "time.time() call", "time.time reference", "'from time import time'"
    }


def test_clock_lint_allows_monotonic_clocks(tmp_path):
    good = tmp_path / "good.py"
    good.write_text(
        "import time\n"
        "from datetime import datetime, timezone\n"
        "t0 = time.perf_counter()\n"
        "t1 = time.monotonic()\n"
        "wall = datetime.now(timezone.utc)\n"
    )
    assert check_clocks.check_tree(tmp_path) == []


def test_clock_lint_cli_exit_codes(tmp_path, capsys):
    assert check_clocks.main(["prog", str(tmp_path)]) == 0
    (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
    assert check_clocks.main(["prog", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "bad.py:2" in out
    assert check_clocks.main(["prog", str(tmp_path / "nope")]) == 2


def test_no_scalar_hot_loops_in_kernels():
    violations = check_hot_loops.check_tree(REPO_ROOT / "src")
    assert violations == [], "\n".join(violations)


def test_hot_loop_scope_covers_cleaning_stages():
    assert set(check_hot_loops.SCOPE) == {
        "repro/ml",
        "repro/detectors",
        "repro/constraints",
        "repro/repair",
    }


def _ml_file(tmp_path, name, text):
    path = tmp_path / "repro" / "ml" / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


def _scoped_file(tmp_path, relative, text):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


def test_hot_loop_lint_flags_argsort_in_best_split(tmp_path):
    _ml_file(
        tmp_path, "bad_tree.py",
        "import numpy as np\n"
        "def _best_split(features):\n"
        "    order = np.argsort(features[:, 0])\n"
        "    return order\n"
        "def elsewhere(features):\n"
        "    return np.argsort(features, axis=0)\n",
    )
    violations = check_hot_loops.check_tree(tmp_path)
    # argsort outside _best_split (the root presort) stays legal.
    assert len(violations) == 1, "\n".join(violations)
    assert "bad_tree.py:3" in violations[0]
    assert "_best_split" in violations[0]


def test_hot_loop_lint_flags_per_row_loops(tmp_path):
    _ml_file(
        tmp_path, "bad_predict.py",
        "def predict(features):\n"
        "    out = []\n"
        "    for row in features:\n"
        "        out.append(row.sum())\n"
        "    for i, row in enumerate(features):\n"
        "        out[i] += 1\n"
        "    for name in columns:\n"
        "        pass\n"
        "    return out\n",
    )
    violations = check_hot_loops.check_tree(tmp_path)
    assert len(violations) == 2, "\n".join(violations)
    assert "bad_predict.py:3" in violations[0]
    assert "bad_predict.py:5" in violations[1]


def test_hot_loop_lint_flags_cleaning_stage_dirs(tmp_path):
    # The cleaning-stage kernels are now in scope alongside repro/ml.
    loop = "def f(features):\n    for row in features:\n        pass\n"
    _scoped_file(tmp_path, "repro/detectors/loopy.py", loop)
    _scoped_file(tmp_path, "repro/constraints/loopy.py", loop)
    _scoped_file(tmp_path, "repro/repair/loopy.py", loop)
    violations = check_hot_loops.check_tree(tmp_path)
    assert len(violations) == 3, "\n".join(violations)
    assert any("detectors" in v for v in violations)
    assert any("constraints" in v for v in violations)
    assert any("repair" in v for v in violations)


def test_hot_loop_lint_flags_pair_enumeration_outside_blocking(tmp_path):
    _scoped_file(
        tmp_path, "repro/detectors/pairs.py",
        "def score_all(members):\n"
        "    out = []\n"
        "    for a in members:\n"
        "        for b in members:\n"
        "            out.append((a, b))\n"
        "    return out\n"
        "def _enumerate_block_pairs(members):\n"
        "    for a in members:\n"
        "        for b in members:\n"
        "            yield a, b\n"
        "def per_column(categorical):\n"
        "    for col_a in categorical:\n"
        "        for col_b in categorical:\n"
        "            pass\n",
    )
    violations = check_hot_loops.check_tree(tmp_path)
    # Only the unblocked all-pairs loop is flagged: blocking functions
    # cap the square, and column x column nesting is schema-bounded.
    assert len(violations) == 1, "\n".join(violations)
    assert "pairs.py:4" in violations[0]
    assert "blocking" in violations[0]


def test_hot_loop_lint_honours_allowlist_and_scope(tmp_path):
    loop = "def predict(features):\n    for row in features:\n        pass\n"
    # Frozen scalar references stay scalar by design, in every scoped dir.
    _ml_file(tmp_path, "_reference.py", loop)
    _scoped_file(tmp_path, "repro/detectors/_reference.py", loop)
    _scoped_file(tmp_path, "repro/constraints/_reference.py", loop)
    _scoped_file(tmp_path, "repro/repair/_reference.py", loop)
    # Outside the scoped kernel trees the same pattern is not the
    # lint's business.
    _scoped_file(tmp_path, "repro/service/loopy.py", loop)
    # Sparse iteration over detected cells is not a per-row table scan.
    _scoped_file(
        tmp_path, "repro/repair/sparse.py",
        "def apply(detections):\n"
        "    for row, column in detections:\n"
        "        pass\n",
    )
    assert check_hot_loops.check_tree(tmp_path) == []


def test_hot_loop_lint_cli_exit_codes(tmp_path, capsys):
    assert check_hot_loops.main(["prog", str(tmp_path)]) == 0
    _ml_file(
        tmp_path, "bad.py",
        "def f(features):\n    for row in features:\n        pass\n",
    )
    assert check_hot_loops.main(["prog", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "bad.py:2" in out
    assert check_hot_loops.main(["prog", str(tmp_path / "nope")]) == 2


def test_no_whole_table_access_in_block_paths():
    violations = check_block_paths.check_tree(REPO_ROOT / "src")
    assert violations == [], "\n".join(violations)


def _block_path_tree(tmp_path, text, name="repro/detectors/simple.py"):
    """A fake src tree with every declared block-path module present."""
    for rel in check_block_paths.BLOCK_PATH_MODULES:
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("")
    (tmp_path / name).write_text(text)
    return tmp_path


def test_block_path_lint_flags_whole_table_materializer(tmp_path):
    _block_path_tree(
        tmp_path,
        "def _detect_block(self, context, fitted, block, start):\n"
        "    values = context.dirty.as_float('n')\n"
        "    return set()\n",
    )
    violations = check_block_paths.check_tree(tmp_path)
    assert len(violations) == 1, "\n".join(violations)
    assert "simple.py:2" in violations[0]
    assert "context.dirty.as_float" in violations[0]


def test_block_path_lint_allows_block_receiver(tmp_path):
    _block_path_tree(
        tmp_path,
        "def _detect_block(self, context, fitted, block, start):\n"
        "    values = block.as_float('n')\n"
        "    cells = block.missing_cells()\n"
        "    return cells\n"
        # Outside *_block functions whole-table access is the norm.
        "def fit_profile(self, context):\n"
        "    return context.dirty.as_float('n')\n",
    )
    assert check_block_paths.check_tree(tmp_path) == []


def test_block_path_lint_flags_missing_declared_module(tmp_path):
    tree = _block_path_tree(tmp_path, "")
    (tree / "repro/ml/tree.py").unlink()
    violations = check_block_paths.check_tree(tmp_path)
    assert len(violations) == 1
    assert "missing" in violations[0]


def test_service_endpoints_declare_timeouts_and_map_failures():
    violations = check_service_endpoints.check_tree(REPO_ROOT / "src")
    assert violations == [], "\n".join(violations)


def _api_module(tmp_path, text):
    path = tmp_path / "repro" / "service" / "api.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return tmp_path


#: A minimal API module that satisfies every endpoint-lint rule.
_API_OK = (
    "@route('GET', '/v1/health', timeout=5.0)\n"
    "def health(service, request):\n"
    "    return Response()\n"
    "def _dispatch(self):\n"
    "    try:\n"
    "        pass\n"
    "    except Exception as exc:\n"
    "        response = error_response(exc)\n"
    "def error_response(exc):\n"
    "    return classify_exception(exc)\n"
)


def test_endpoint_lint_accepts_well_formed_module(tmp_path):
    assert check_service_endpoints.check_tree(
        _api_module(tmp_path, _API_OK)
    ) == []


def test_endpoint_lint_flags_missing_timeout(tmp_path):
    tree = _api_module(
        tmp_path,
        _API_OK + "@route('GET', '/v1/naked')\ndef naked(s, r):\n    pass\n",
    )
    violations = check_service_endpoints.check_tree(tree)
    assert len(violations) == 1, "\n".join(violations)
    assert "'naked' declares no timeout" in violations[0]


def test_endpoint_lint_flags_computed_or_nonpositive_timeout(tmp_path):
    tree = _api_module(
        tmp_path,
        _API_OK
        + "@route('GET', '/a', timeout=LIMIT)\ndef a(s, r):\n    pass\n"
        + "@route('GET', '/b', timeout=0)\ndef b(s, r):\n    pass\n",
    )
    violations = check_service_endpoints.check_tree(tree)
    assert len(violations) == 2, "\n".join(violations)
    assert all("positive numeric literal" in v for v in violations)


def test_endpoint_lint_flags_swallowing_handler(tmp_path):
    tree = _api_module(
        tmp_path,
        _API_OK
        + "@route('GET', '/c', timeout=1)\n"
        "def c(s, r):\n"
        "    try:\n"
        "        pass\n"
        "    except Exception:\n"
        "        pass\n",
    )
    violations = check_service_endpoints.check_tree(tree)
    assert len(violations) == 1, "\n".join(violations)
    assert "propagate to the dispatch boundary" in violations[0]


def test_endpoint_lint_flags_missing_taxonomy_boundary(tmp_path):
    tree = _api_module(
        tmp_path,
        "@route('GET', '/v1/health', timeout=5.0)\n"
        "def health(service, request):\n"
        "    return Response()\n",
    )
    violations = check_service_endpoints.check_tree(tree)
    assert any("no dispatch boundary" in v for v in violations)
    assert any("classify_exception" in v for v in violations)


def test_endpoint_lint_flags_boundary_without_error_response(tmp_path):
    tree = _api_module(
        tmp_path,
        _API_OK
        + "def other():\n"
        "    try:\n"
        "        pass\n"
        "    except Exception:\n"
        "        return None\n",
    )
    violations = check_service_endpoints.check_tree(tree)
    assert len(violations) == 1, "\n".join(violations)
    assert "does not map the failure through error_response" in violations[0]


def test_endpoint_lint_flags_missing_module(tmp_path):
    violations = check_service_endpoints.check_tree(tmp_path)
    assert len(violations) == 1
    assert "missing" in violations[0]


def test_endpoint_lint_cli_exit_codes(tmp_path, capsys):
    _api_module(tmp_path, _API_OK)
    assert check_service_endpoints.main(["prog", str(tmp_path)]) == 0
    _api_module(tmp_path, "try:\n    pass\nexcept:\n    pass\n")
    assert check_service_endpoints.main(["prog", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "api.py:3" in out
    assert check_service_endpoints.main(["prog", str(tmp_path / "nope")]) == 2


def test_block_path_lint_cli_exit_codes(tmp_path, capsys):
    _block_path_tree(
        tmp_path,
        "def encode_block(table):\n"
        "    return table.numeric_matrix()\n",
        name="repro/dataset/encoding.py",
    )
    assert check_block_paths.main(["prog", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "encoding.py:2" in out
    (tmp_path / "repro/dataset/encoding.py").write_text("")
    assert check_block_paths.main(["prog", str(tmp_path)]) == 0
    assert check_block_paths.main(["prog", str(tmp_path / "nope")]) == 2


# ----------------------------------------------------------------------
# Data-plane lint (tools/check_dataplane.py)
# ----------------------------------------------------------------------
_SEGMENTS_OK = (
    "from multiprocessing import shared_memory\n"
    "def create(nbytes):\n"
    "    return shared_memory.SharedMemory(create=True, size=nbytes)\n"
    "def destroy(segment):\n"
    "    segment.close()\n"
    "    segment.unlink()\n"
)

_ENGINE_OK = (
    "def run(pool, shipment, specs):\n"
    "    pool.apply(init, initargs=(shipment,))\n"
    "    return pool.imap_unordered(work, specs, chunksize=1)\n"
)


def _dataplane_tree(tmp_path, engine_src=_ENGINE_OK, segments_src=_SEGMENTS_OK):
    engine = tmp_path / "repro" / "parallel" / "engine.py"
    engine.parent.mkdir(parents=True, exist_ok=True)
    engine.write_text(engine_src)
    segments = tmp_path / "repro" / "dataplane" / "segments.py"
    segments.parent.mkdir(parents=True, exist_ok=True)
    segments.write_text(segments_src)
    return tmp_path


def test_dataplane_tree_is_clean():
    violations = check_dataplane.check_tree(REPO_ROOT / "src")
    assert violations == [], "\n".join(violations)


def test_dataplane_lint_accepts_conforming_tree(tmp_path):
    _dataplane_tree(tmp_path)
    assert check_dataplane.check_tree(tmp_path) == []


def test_dataplane_lint_flags_create_outside_lifecycle(tmp_path):
    _dataplane_tree(tmp_path)
    stray = tmp_path / "repro" / "stray.py"
    stray.write_text(
        "from multiprocessing.shared_memory import SharedMemory\n"
        "segment = SharedMemory(create=True, size=64)\n"
    )
    violations = check_dataplane.check_tree(tmp_path)
    assert len(violations) == 1, "\n".join(violations)
    assert "stray.py:2" in violations[0]
    assert "no unlink owner" in violations[0]


def test_dataplane_lint_requires_unlink_in_lifecycle(tmp_path):
    _dataplane_tree(
        tmp_path,
        segments_src=(
            "from multiprocessing import shared_memory\n"
            "def create(nbytes):\n"
            "    return shared_memory.SharedMemory(create=True,"
            " size=nbytes)\n"
        ),
    )
    violations = check_dataplane.check_tree(tmp_path)
    assert len(violations) == 1, "\n".join(violations)
    assert "never calls unlink()" in violations[0]


def test_dataplane_lint_ignores_attach_only_use(tmp_path):
    _dataplane_tree(tmp_path)
    reader = tmp_path / "repro" / "reader.py"
    reader.write_text(
        "from multiprocessing.shared_memory import SharedMemory\n"
        "segment = SharedMemory(name='x')\n"
        "other = SharedMemory(name='y', create=False)\n"
    )
    assert check_dataplane.check_tree(tmp_path) == []


def test_dataplane_lint_flags_shared_in_initargs(tmp_path):
    _dataplane_tree(
        tmp_path,
        engine_src=(
            "def run(pool, plan, specs):\n"
            "    pool.apply(init, initargs=(plan.adapter, plan.shared))\n"
            "    return pool.imap_unordered(work, specs, chunksize=1)\n"
        ),
    )
    violations = check_dataplane.check_tree(tmp_path)
    assert len(violations) == 1, "\n".join(violations)
    assert "initargs references the shared context" in violations[0]


def test_dataplane_lint_flags_shared_in_dispatch_iterable(tmp_path):
    _dataplane_tree(
        tmp_path,
        engine_src=(
            "def run(pool, shared, specs):\n"
            "    units = [(shared, spec) for spec in specs]\n"
            "    return pool.imap_unordered(work, units)\n"
        ),
    )
    violations = check_dataplane.check_tree(tmp_path)
    assert len(violations) == 1, "\n".join(violations)
    assert "iterable references the shared context" in violations[0]


def test_dataplane_lint_flags_missing_dispatch_module(tmp_path):
    segments = tmp_path / "repro" / "dataplane" / "segments.py"
    segments.parent.mkdir(parents=True)
    segments.write_text(_SEGMENTS_OK)
    violations = check_dataplane.check_tree(tmp_path)
    assert len(violations) == 1
    assert "dispatch module missing" in violations[0]


def test_dataplane_lint_cli_exit_codes(tmp_path, capsys):
    _dataplane_tree(tmp_path)
    assert check_dataplane.main(["prog", str(tmp_path)]) == 0
    stray = tmp_path / "repro" / "stray.py"
    stray.write_text(
        "from multiprocessing.shared_memory import SharedMemory\n"
        "segment = SharedMemory(create=True, size=64)\n"
    )
    assert check_dataplane.main(["prog", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "stray.py:2" in out
    assert check_dataplane.main(["prog", str(tmp_path / "nope")]) == 2
