"""Tests for detection, repair, model, and statistical metrics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset import CATEGORICAL, NUMERICAL, Schema, Table
from repro.metrics import (
    classification_report,
    detection_scores,
    f1_score,
    iou,
    iou_matrix,
    precision_recall_f1,
    repair_rmse,
    repair_rmse_per_column,
    repair_scores_categorical,
    rmse,
    silhouette_score,
    wilcoxon_signed_rank,
)


class TestDetectionScores:
    def test_perfect_detection(self):
        errors = {(0, "a"), (1, "b")}
        scores = detection_scores(errors, errors)
        assert scores.precision == scores.recall == scores.f1 == 1.0
        assert scores.true_positives == 2

    def test_partial_detection(self):
        scores = detection_scores({(0, "a"), (5, "x")}, {(0, "a"), (1, "b")})
        assert scores.precision == 0.5
        assert scores.recall == 0.5
        assert scores.f1 == 0.5
        assert scores.false_positives == 1
        assert scores.false_negatives == 1

    def test_empty_detection(self):
        scores = detection_scores(set(), {(0, "a")})
        assert scores.precision == 0.0 and scores.recall == 0.0
        assert scores.f1 == 0.0

    def test_no_actual_errors(self):
        scores = detection_scores({(0, "a")}, set())
        assert scores.recall == 0.0
        assert scores.detected == 1


class TestIoU:
    def test_identical(self):
        cells = {(0, "a"), (1, "a")}
        assert iou(cells, cells) == 1.0

    def test_disjoint(self):
        assert iou({(0, "a")}, {(1, "a")}) == 0.0

    def test_half_overlap(self):
        assert iou({(0, "a"), (1, "a")}, {(1, "a"), (2, "a")}) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert iou(set(), set()) == 1.0

    def test_matrix_symmetric_unit_diagonal(self):
        detections = {
            "d1": {(0, "a"), (1, "a")},
            "d2": {(1, "a"), (2, "a")},
        }
        actual = {(0, "a"), (1, "a"), (2, "a")}
        names, matrix = iou_matrix(detections, actual)
        assert names == ["d1", "d2"]
        assert matrix[0][0] == matrix[1][1] == 1.0
        assert matrix[0][1] == matrix[1][0]

    def test_matrix_tp_only_filters_false_positives(self):
        detections = {"d1": {(0, "a"), (9, "z")}, "d2": {(0, "a"), (8, "z")}}
        actual = {(0, "a")}
        _, matrix = iou_matrix(detections, actual, true_positives_only=True)
        assert matrix[0][1] == 1.0  # FPs at (9,z)/(8,z) are ignored


def _repair_fixture():
    schema = Schema.from_pairs([("cat", CATEGORICAL), ("num", NUMERICAL)])
    clean = Table(schema, {"cat": ["a", "b", "c", "d"], "num": [1.0, 2.0, 3.0, 4.0]})
    dirty = Table(schema, {"cat": ["x", "b", "y", "d"], "num": [1.0, 99.0, 3.0, "typo"]})
    return schema, clean, dirty


class TestRepairScores:
    def test_perfect_repair(self):
        _, clean, dirty = _repair_fixture()
        errors = dirty.diff_cells(clean)
        scores = repair_scores_categorical(dirty, clean.copy(), clean, errors)
        assert scores.precision == 1.0
        assert scores.recall == 1.0

    def test_no_repair(self):
        _, clean, dirty = _repair_fixture()
        errors = dirty.diff_cells(clean)
        scores = repair_scores_categorical(dirty, dirty.copy(), clean, errors)
        assert scores.repaired == 0
        assert scores.f1 == 0.0

    def test_wrong_repair_hurts_precision(self):
        _, clean, dirty = _repair_fixture()
        errors = dirty.diff_cells(clean)
        repaired = dirty.copy()
        repaired.set_cell(0, "cat", "a")   # correct
        repaired.set_cell(2, "cat", "zzz") # wrong
        scores = repair_scores_categorical(dirty, repaired, clean, errors)
        assert scores.precision == 0.5
        assert scores.correctly_repaired == 1

    def test_rmse_ignores_unrepaired_text(self):
        _, clean, dirty = _repair_fixture()
        value = repair_rmse(dirty, clean, normalize=False)
        # Only row 1 differs numerically (99 vs 2); the 'typo' cell is
        # filtered out, leaving 3 valid cells in the denominator.
        assert value == pytest.approx(math.sqrt(97.0**2 / 3.0))

    def test_rmse_zero_when_repaired_perfectly(self):
        _, clean, _ = _repair_fixture()
        assert repair_rmse(clean.copy(), clean) == 0.0

    def test_rmse_no_numeric_columns(self):
        schema = Schema.from_pairs([("c", CATEGORICAL)])
        t = Table(schema, {"c": ["a"]})
        assert repair_rmse(t, t) == 0.0

    def test_rmse_per_column_values(self):
        schema = Schema.from_pairs([("a", NUMERICAL), ("b", NUMERICAL)])
        clean = Table(schema, {"a": [0.0, 0.0, 0.0, 0.0], "b": [0.0, 0.0, 0.0, 0.0]})
        bad = Table(schema, {"a": [2.0, 2.0, 2.0, 2.0], "b": ["x", "x", "x", 4.0]})
        per = repair_rmse_per_column(bad, clean, normalize=False)
        assert per == {"a": pytest.approx(2.0), "b": pytest.approx(4.0)}

    def test_rmse_mean_weights_columns_equally(self):
        # Regression: pooling all cells weighted each column by its
        # valid-cell count, so a column whose repairs left mostly
        # non-numeric text (few valid cells) was nearly invisible even
        # when its surviving cells were far off.  Column "b" has one
        # valid cell at distance 4; pooled RMSE buries it among "a"'s
        # four cells at distance 2, while the per-column mean keeps both
        # columns at equal weight.
        schema = Schema.from_pairs([("a", NUMERICAL), ("b", NUMERICAL)])
        clean = Table(schema, {"a": [0.0, 0.0, 0.0, 0.0], "b": [0.0, 0.0, 0.0, 0.0]})
        bad = Table(schema, {"a": [2.0, 2.0, 2.0, 2.0], "b": ["x", "x", "x", 4.0]})
        mean_rmse = repair_rmse(bad, clean, normalize=False)
        pooled = repair_rmse(bad, clean, normalize=False, aggregate="pooled")
        assert mean_rmse == pytest.approx((2.0 + 4.0) / 2)
        assert pooled == pytest.approx(math.sqrt((4 * 4.0 + 16.0) / 5))
        assert mean_rmse > pooled

    def test_rmse_aggregate_validation(self):
        _, clean, dirty = _repair_fixture()
        with pytest.raises(ValueError):
            repair_rmse(dirty, clean, aggregate="median")

    def test_rmse_single_column_agrees_across_aggregates(self):
        _, clean, dirty = _repair_fixture()
        assert repair_rmse(dirty, clean) == pytest.approx(
            repair_rmse(dirty, clean, aggregate="pooled")
        )


class TestClassificationMetrics:
    def test_perfect(self):
        report = classification_report([0, 1, 2], [0, 1, 2])
        assert report["f1"] == 1.0 and report["accuracy"] == 1.0

    def test_macro_vs_micro(self):
        y_true = [0, 0, 0, 1]
        y_pred = [0, 0, 0, 0]
        _, _, macro = precision_recall_f1(y_true, y_pred, "macro")
        _, _, micro = precision_recall_f1(y_true, y_pred, "micro")
        assert micro == 0.75
        assert macro < micro  # the missed minority class drags macro down

    def test_validation(self):
        with pytest.raises(ValueError):
            precision_recall_f1([1], [1, 2])
        with pytest.raises(ValueError):
            precision_recall_f1([], [])
        with pytest.raises(ValueError):
            precision_recall_f1([1], [1], average="weighted")

    def test_rmse(self):
        assert rmse([1.0, 2.0], [1.0, 2.0]) == 0.0
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(math.sqrt(12.5))
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])

    def test_string_labels(self):
        assert f1_score(["a", "b"], ["a", "b"]) == 1.0


class TestSilhouette:
    def test_well_separated(self):
        rng = np.random.default_rng(0)
        points = np.vstack(
            [rng.normal(0, 0.1, (20, 2)), rng.normal(10, 0.1, (20, 2))]
        )
        labels = np.array([0] * 20 + [1] * 20)
        assert silhouette_score(points, labels) > 0.9

    def test_random_labels_near_zero(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(40, 2))
        labels = rng.integers(0, 2, size=40)
        assert abs(silhouette_score(points, labels)) < 0.3

    def test_single_cluster_returns_zero(self):
        points = np.random.default_rng(2).normal(size=(10, 2))
        assert silhouette_score(points, np.zeros(10, dtype=int)) == 0.0

    def test_noise_excluded(self):
        points = np.vstack([np.zeros((5, 2)), np.ones((5, 2)) * 10, [[100, 100]]])
        labels = np.array([0] * 5 + [1] * 5 + [-1])
        assert silhouette_score(points, labels) > 0.9

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((3, 2)), [0, 1])


class TestWilcoxon:
    def test_identical_samples_not_significant(self):
        result = wilcoxon_signed_rank([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert result.p_value == 1.0
        assert not result.reject_null()

    def test_clearly_different_samples_significant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.9, 0.01, size=30)
        b = rng.normal(0.5, 0.01, size=30)
        result = wilcoxon_signed_rank(a, b)
        assert result.reject_null(0.05)
        assert result.p_value < 0.001

    def test_small_noise_not_significant(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0.7, 0.05, size=10)
        b = a + rng.normal(0.0, 0.05, size=10)
        result = wilcoxon_signed_rank(a, b)
        assert result.p_value > 0.01

    def test_matches_scipy_large_sample(self):
        from scipy import stats

        rng = np.random.default_rng(2)
        a = rng.normal(0.0, 1.0, size=40)
        b = a + rng.normal(0.3, 1.0, size=40)
        ours = wilcoxon_signed_rank(a, b)
        theirs = stats.wilcoxon(a, b, correction=True, method="approx")
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=0.05)

    def test_matches_scipy_exact_small_sample(self):
        from scipy import stats

        a = [0.82, 0.79, 0.85, 0.88, 0.70, 0.91, 0.80]
        b = [0.75, 0.80, 0.78, 0.81, 0.69, 0.84, 0.77]
        ours = wilcoxon_signed_rank(a, b)
        theirs = stats.wilcoxon(a, b, method="exact")
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([], [])

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=25,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_p_value_in_unit_interval(self, values):
        shifted = [v + 0.1 for v in values]
        result = wilcoxon_signed_rank(values, shifted)
        assert 0.0 <= result.p_value <= 1.0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-10, max_value=10, allow_nan=False),
                st.floats(min_value=-10, max_value=10, allow_nan=False),
            ),
            min_size=2,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, pairs):
        a = [p[0] for p in pairs]
        b = [p[1] for p in pairs]
        forward = wilcoxon_signed_rank(a, b)
        backward = wilcoxon_signed_rank(b, a)
        assert forward.p_value == pytest.approx(backward.p_value, abs=1e-9)
