"""Validation and small-contract tests swept across the package."""

import numpy as np
import pytest

from repro.context import CleaningContext
from repro.dataset import NUMERICAL, Schema, Table, kfold_indices
from repro.detectors import (
    DBoostDetector,
    IFDetector,
    IQRDetector,
    SDDetector,
    ZeroERDetector,
)
from repro.errors import SwapInjector, GaussianNoiseInjector


class TestDetectorValidation:
    def test_sd_iqr_parameters(self):
        with pytest.raises(ValueError):
            SDDetector(n_sigmas=0)
        with pytest.raises(ValueError):
            IQRDetector(k=-1)
        with pytest.raises(ValueError):
            DBoostDetector(n_search=0)

    def test_detectors_empty_numeric_table(self):
        schema = Schema.from_pairs([("x", NUMERICAL)])
        table = Table(schema, {"x": [None, None, None]})
        ctx = CleaningContext(dirty=table)
        for detector in (SDDetector(), IQRDetector(), IFDetector(), DBoostDetector()):
            assert detector.detect(ctx).n_detected == 0

    def test_zeroer_tiny_table(self):
        schema = Schema.from_pairs([("x", NUMERICAL)])
        table = Table(schema, {"x": [1.0, 2.0]})
        ctx = CleaningContext(dirty=table)
        assert ZeroERDetector().detect(ctx).n_detected == 0


class TestKFoldDeterminism:
    def test_same_seed_same_folds(self):
        a = [tuple(map(tuple, f)) for f in kfold_indices(20, 4, seed=5)]
        b = [tuple(map(tuple, f)) for f in kfold_indices(20, 4, seed=5)]
        assert a == b

    def test_different_seed_differs(self):
        a = [t.tolist() for _, t in kfold_indices(20, 4, seed=1)]
        b = [t.tolist() for _, t in kfold_indices(20, 4, seed=2)]
        assert a != b


class TestNoiseAndSwapInjectors:
    def _table(self, n=60, seed=0):
        rng = np.random.default_rng(seed)
        schema = Schema.from_pairs([("x", NUMERICAL), ("y", NUMERICAL)])
        return Table(
            schema,
            {
                "x": rng.normal(10, 2, n).tolist(),
                "y": rng.normal(-5, 1, n).tolist(),
            },
        )

    def test_gaussian_noise_stays_plausible(self):
        table = self._table()
        result = GaussianNoiseInjector(scale=0.5).inject(
            table, 0.2, np.random.default_rng(1)
        )
        dirty_values = result.dirty.as_float("x")
        clean_values = table.as_float("x")
        # Noise at 0.5 sigma keeps values within a few sigma of the mean.
        assert np.abs(dirty_values - clean_values.mean()).max() < 6 * clean_values.std() + 6

    @pytest.mark.parametrize("seed", range(5))
    def test_swap_mask_matches_diff(self, seed):
        table = self._table(seed=2)
        result = SwapInjector().inject(
            table, 0.3, np.random.default_rng(seed)
        )
        # Even with overlapping swaps (a cell swapped twice can revert),
        # the reconciled mask equals the true diff.
        assert result.error_cells == table.diff_cells(result.dirty)
        # Swaps preserve each column's multiset of values.
        for column in table.column_names:
            assert sorted(map(str, table.column(column))) == sorted(
                map(str, result.dirty.column(column))
            )
