"""Tests for clustering models and the isolation forest."""

import numpy as np
import pytest

from repro.ml import (
    AffinityPropagation,
    AgglomerativeClustering,
    Birch,
    GaussianMixture,
    IsolationForest,
    KMeans,
    Optics,
)


def make_three_blobs(n_per=40, seed=0, spread=0.4):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [8.0, 8.0], [-8.0, 8.0]])
    points = np.vstack(
        [c + rng.normal(0, spread, size=(n_per, 2)) for c in centers]
    )
    truth = np.repeat(np.arange(3), n_per)
    return points, truth


def cluster_purity(labels, truth):
    """Fraction of points in clusters dominated by a single true label."""
    total = 0
    for cluster in np.unique(labels):
        if cluster == -1:
            continue
        members = truth[labels == cluster]
        total += np.bincount(members).max()
    return total / len(truth)


@pytest.mark.parametrize(
    "model",
    [
        KMeans(n_clusters=3, seed=1),
        GaussianMixture(n_components=3, seed=1),
        AgglomerativeClustering(n_clusters=3),
        Birch(n_clusters=3, threshold=2.0),
    ],
    ids=lambda m: type(m).__name__,
)
def test_clusterers_recover_blobs(model):
    points, truth = make_three_blobs(seed=2)
    labels = model.fit_predict(points)
    assert len(labels) == len(points)
    assert cluster_purity(labels, truth) > 0.95


def test_affinity_propagation_finds_clusters():
    points, truth = make_three_blobs(n_per=20, seed=3)
    model = AffinityPropagation().fit(points)
    assert cluster_purity(model.labels_, truth) > 0.95
    # Exemplars are actual data points.
    assert all(0 <= e < len(points) for e in model.exemplars_)


def test_optics_separates_dense_blobs():
    points, truth = make_three_blobs(n_per=30, seed=4, spread=0.3)
    model = Optics(min_samples=5).fit(points)
    clustered = model.labels_ >= 0
    assert clustered.mean() > 0.8
    assert cluster_purity(model.labels_[clustered], truth[clustered]) > 0.9


def test_optics_marks_far_noise():
    points, _ = make_three_blobs(n_per=30, seed=5, spread=0.3)
    noisy = np.vstack([points, [[100.0, -100.0]]])
    model = Optics(min_samples=5, eps=2.0).fit(noisy)
    assert model.labels_[-1] == -1


def test_kmeans_predict_consistent_with_fit():
    points, _ = make_three_blobs(seed=6)
    model = KMeans(n_clusters=3, seed=0).fit(points)
    assert np.array_equal(model.predict(points), model.labels_)
    assert model.inertia_ < np.inf


def test_kmeans_validation():
    with pytest.raises(ValueError):
        KMeans(n_clusters=0)
    with pytest.raises(ValueError):
        KMeans(n_clusters=10).fit(np.zeros((3, 2)))


def test_gmm_proba_rows_sum_to_one():
    points, _ = make_three_blobs(seed=7)
    model = GaussianMixture(n_components=3, seed=0).fit(points)
    proba = model.predict_proba(points[:5])
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_gmm_separated_components_have_distinct_means():
    points, _ = make_three_blobs(seed=8)
    model = GaussianMixture(n_components=3, seed=0).fit(points)
    distances = np.linalg.norm(
        model.means_[:, None, :] - model.means_[None, :, :], axis=2
    )
    off_diagonal = distances[~np.eye(3, dtype=bool)]
    assert off_diagonal.min() > 3.0


def test_agglomerative_linkages():
    points, truth = make_three_blobs(n_per=15, seed=9)
    for linkage in ("average", "single", "complete"):
        model = AgglomerativeClustering(3, linkage=linkage).fit(points)
        assert cluster_purity(model.labels_, truth) > 0.9
    with pytest.raises(ValueError):
        AgglomerativeClustering(3, linkage="ward")


def test_birch_threshold_controls_entries():
    points, _ = make_three_blobs(seed=10)
    coarse = Birch(n_clusters=3, threshold=5.0).fit(points)
    fine = Birch(n_clusters=3, threshold=0.1).fit(points)
    assert len(fine.subcluster_centers_) > len(coarse.subcluster_centers_)
    with pytest.raises(ValueError):
        Birch(threshold=0.0)


class TestIsolationForest:
    def test_flags_planted_outliers(self):
        rng = np.random.default_rng(0)
        inliers = rng.normal(0, 1, size=(200, 3))
        outliers = rng.normal(0, 1, size=(10, 3)) + 12.0
        data = np.vstack([inliers, outliers])
        forest = IsolationForest(n_estimators=50, contamination=0.05, seed=1)
        forest.fit(data)
        scores = forest.score_samples(data)
        # Outliers should dominate the top-10 anomaly scores.
        top = np.argsort(scores)[-10:]
        assert len(set(top) & set(range(200, 210))) >= 8

    def test_predict_convention(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(100, 2))
        forest = IsolationForest(n_estimators=20, seed=0).fit(data)
        predictions = forest.predict(data)
        assert set(np.unique(predictions)) <= {-1, 1}

    def test_contamination_validation(self):
        with pytest.raises(ValueError):
            IsolationForest(contamination=0.9)

    def test_needs_features(self):
        with pytest.raises(ValueError):
            IsolationForest().fit(np.zeros((10, 0)))
