"""Edge-case tests for the ML substrate: boosting dynamics, MLP scaling,
naive Bayes feature handling, tree feature subsampling."""

import numpy as np
import pytest

from repro.ml import (
    AdaBoostClassifier,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    MLPClassifier,
    MLPRegressor,
    MultinomialNB,
)
from repro.ml.tree import _resolve_max_features


def make_regression(n=200, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 4))
    targets = (
        np.sin(features[:, 0]) + features[:, 1] ** 2 + rng.normal(0, 0.1, n)
    )
    return features, targets


class TestBoostingDynamics:
    def test_more_estimators_improve_gbm(self):
        features, targets = make_regression(seed=1)
        train, test = slice(0, 150), slice(150, None)
        shallow = GradientBoostingRegressor(n_estimators=3, seed=0)
        deep = GradientBoostingRegressor(n_estimators=60, seed=0)
        shallow.fit(features[train], targets[train])
        deep.fit(features[train], targets[train])
        assert deep.score(features[test], targets[test]) > shallow.score(
            features[test], targets[test]
        )

    def test_gbm_subsample(self):
        features, targets = make_regression(n=120, seed=2)
        model = GradientBoostingRegressor(
            n_estimators=20, subsample=0.5, seed=0
        )
        model.fit(features, targets)
        assert model.score(features, targets) > 0.5

    def test_adaboost_concentrates_on_hard_points(self):
        rng = np.random.default_rng(3)
        features = rng.normal(size=(200, 2))
        labels = ((features[:, 0] > 0) ^ (features[:, 1] > 0)).astype(int)
        weak = DecisionTreeClassifier(max_depth=2)
        weak.fit(features, labels)
        boosted = AdaBoostClassifier(n_estimators=40, max_depth=2, seed=0)
        boosted.fit(features, labels)
        # XOR needs the reweighted ensemble; depth-1 stumps are all ~chance
        # on XOR (boosting skips them), so depth-2 weak learners are used.
        assert boosted.score(features, labels) >= weak.score(features, labels)
        assert boosted.score(features, labels) > 0.85

    def test_gbc_multiclass(self):
        rng = np.random.default_rng(4)
        centers = np.array([[0, 0], [6, 0], [0, 6]])
        labels = rng.integers(0, 3, size=150)
        features = centers[labels] + rng.normal(0, 0.5, (150, 2))
        model = GradientBoostingClassifier(n_estimators=15, seed=0)
        model.fit(features, labels)
        assert model.score(features, labels) > 0.9


class TestMLPScaling:
    def test_regressor_handles_large_targets(self):
        rng = np.random.default_rng(5)
        features = rng.normal(size=(150, 3))
        targets = 1e6 + 1e5 * features[:, 0]
        model = MLPRegressor(hidden=(16,), epochs=150, seed=0)
        model.fit(features, targets)
        # Internal target standardization keeps huge scales learnable.
        assert model.score(features, targets) > 0.8

    def test_classifier_deep_architecture(self):
        rng = np.random.default_rng(6)
        features = rng.normal(size=(150, 4))
        labels = (features[:, 0] + features[:, 1] > 0).astype(int)
        model = MLPClassifier(hidden=(16, 8), epochs=60, seed=0)
        model.fit(features, labels)
        assert model.score(features, labels) > 0.85


class TestMultinomialNBShift:
    def test_negative_features_handled(self):
        rng = np.random.default_rng(7)
        features = rng.normal(-5.0, 1.0, size=(100, 3))
        features[:50, 0] += 4.0
        labels = np.array([0] * 50 + [1] * 50)
        model = MultinomialNB()
        model.fit(features, labels)
        assert model.score(features, labels) > 0.7


class TestTreeInternals:
    def test_resolve_max_features(self):
        assert _resolve_max_features(None, 10) == 10
        assert _resolve_max_features("sqrt", 16) == 4
        assert _resolve_max_features("log2", 16) == 4
        assert _resolve_max_features(3, 10) == 3
        assert _resolve_max_features(99, 10) == 10
        with pytest.raises(ValueError):
            _resolve_max_features(0, 10)
        with pytest.raises(ValueError):
            _resolve_max_features("cube", 10)

    def test_feature_subsampling_changes_trees(self):
        features, targets = make_regression(n=100, seed=8)
        full = DecisionTreeRegressor(max_depth=4, max_features=None, seed=1)
        sub = DecisionTreeRegressor(max_depth=4, max_features=1, seed=1)
        full.fit(features, targets)
        sub.fit(features, targets)
        # Restricting candidate features generally produces a different
        # (usually worse-fitting) tree on this smooth target.
        assert full.score(features, targets) >= sub.score(features, targets)

    def test_regression_tree_on_constant_target(self):
        features = np.random.default_rng(9).normal(size=(30, 2))
        targets = np.full(30, 7.0)
        model = DecisionTreeRegressor().fit(features, targets)
        assert np.allclose(model.predict(features), 7.0)
        assert model.depth == 0
