"""Tests for the supervised model pool: every model must learn separable
patterns well above chance and obey the fit/predict contract."""

import numpy as np
import pytest

from repro.ml import (
    AdaBoostClassifier,
    AdaBoostRegressor,
    BayesianRidgeRegressor,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GaussianNB,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    KNNClassifier,
    KNNRegressor,
    LinearRegression,
    LinearSVC,
    LogisticRegression,
    MLPClassifier,
    MLPRegressor,
    MultinomialNB,
    RandomForestClassifier,
    RandomForestRegressor,
    RansacRegressor,
    RidgeClassifier,
    RidgeRegressor,
    SGDClassifier,
    clone,
)
from repro.ml.base import check_arrays


def make_blobs(n=150, seed=0, n_classes=3):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 5, size=(n_classes, 4))
    labels = rng.integers(0, n_classes, size=n)
    features = centers[labels] + rng.normal(0, 0.6, size=(n, 4))
    return features, labels


def make_linear_regression(n=150, seed=0, noise=0.1):
    rng = np.random.default_rng(seed)
    features = rng.normal(0, 1, size=(n, 3))
    coefs = np.array([2.0, -1.0, 0.5])
    targets = features @ coefs + 3.0 + rng.normal(0, noise, size=n)
    return features, targets


CLASSIFIERS = [
    LogisticRegression(),
    SGDClassifier(loss="hinge", seed=1),
    SGDClassifier(loss="log", seed=1),
    LinearSVC(),
    RidgeClassifier(),
    DecisionTreeClassifier(max_depth=8),
    RandomForestClassifier(n_estimators=15, max_depth=8),
    AdaBoostClassifier(n_estimators=15, max_depth=2),
    GradientBoostingClassifier(n_estimators=15),
    KNNClassifier(n_neighbors=5),
    GaussianNB(),
    MultinomialNB(),
    MLPClassifier(hidden=(16,), epochs=40, seed=2),
]

REGRESSORS = [
    LinearRegression(),
    RidgeRegressor(alpha=0.1),
    BayesianRidgeRegressor(),
    RansacRegressor(),
    DecisionTreeRegressor(max_depth=8),
    RandomForestRegressor(n_estimators=15, max_depth=8),
    AdaBoostRegressor(n_estimators=15),
    GradientBoostingRegressor(n_estimators=40),
    KNNRegressor(n_neighbors=5),
    MLPRegressor(hidden=(32,), epochs=150, seed=2),
]


@pytest.mark.parametrize("model", CLASSIFIERS, ids=lambda m: type(m).__name__ + "-" + getattr(m, "loss", ""))
def test_classifier_learns_blobs(model):
    features, labels = make_blobs(seed=4)
    model = clone(model)
    model.fit(features[:100], labels[:100])
    accuracy = model.score(features[100:], labels[100:])
    assert accuracy > 0.8, f"{type(model).__name__} accuracy {accuracy}"


@pytest.mark.parametrize("model", CLASSIFIERS, ids=lambda m: type(m).__name__ + "-" + getattr(m, "loss", ""))
def test_classifier_binary(model):
    features, labels = make_blobs(seed=5, n_classes=2)
    model = clone(model)
    model.fit(features[:100], labels[:100])
    predictions = model.predict(features[100:])
    assert set(np.unique(predictions)) <= {0, 1}
    assert model.score(features[100:], labels[100:]) > 0.8


def test_classifier_preserves_original_label_values():
    features, labels = make_blobs(seed=6, n_classes=2)
    string_labels = np.array(["neg", "pos"])[labels]
    model = LogisticRegression().fit(features, string_labels)
    predictions = model.predict(features)
    assert set(predictions) <= {"neg", "pos"}


def test_classifier_single_class_degenerate():
    features = np.random.default_rng(0).normal(size=(20, 3))
    labels = np.zeros(20, dtype=int)
    model = DecisionTreeClassifier().fit(features, labels)
    assert (model.predict(features) == 0).all()


@pytest.mark.parametrize("model", REGRESSORS, ids=lambda m: type(m).__name__)
def test_regressor_fits_linear_signal(model):
    features, targets = make_linear_regression(seed=7)
    model = clone(model)
    model.fit(features[:100], targets[:100])
    r2 = model.score(features[100:], targets[100:])
    assert r2 > 0.7, f"{type(model).__name__} R^2 {r2}"


def test_linear_regression_exact_on_noiseless():
    features, targets = make_linear_regression(noise=0.0)
    model = LinearRegression().fit(features, targets)
    assert np.allclose(model.predict(features), targets, atol=1e-8)


def test_ridge_shrinks_coefficients():
    features, targets = make_linear_regression(noise=0.0)
    small = RidgeRegressor(alpha=0.01).fit(features, targets)
    large = RidgeRegressor(alpha=1000.0).fit(features, targets)
    assert np.linalg.norm(large.coef_[:-1]) < np.linalg.norm(small.coef_[:-1])


def test_ransac_ignores_outliers():
    features, targets = make_linear_regression(n=120, noise=0.05)
    corrupted = targets.copy()
    corrupted[:15] += 100.0  # gross outliers
    robust = RansacRegressor(max_trials=50, seed=1).fit(features, corrupted)
    plain = LinearRegression().fit(features, corrupted)
    clean_r2_robust = robust.score(features[15:], targets[15:])
    clean_r2_plain = plain.score(features[15:], targets[15:])
    assert clean_r2_robust > clean_r2_plain
    assert clean_r2_robust > 0.9


def test_predict_before_fit_raises():
    features, _ = make_blobs(n=10)
    for model in (LogisticRegression(), DecisionTreeRegressor(), KNNClassifier()):
        with pytest.raises(RuntimeError):
            model.predict(features)


def test_check_arrays_rejects_nan_and_bad_shapes():
    with pytest.raises(ValueError, match="NaN"):
        check_arrays(np.array([[1.0, np.nan]]))
    with pytest.raises(ValueError, match="2-D"):
        check_arrays(np.array([1.0, 2.0]))
    with pytest.raises(ValueError, match="targets"):
        check_arrays(np.ones((3, 2)), np.ones(2))


def test_clone_resets_fitted_state():
    features, labels = make_blobs(n=60)
    model = RandomForestClassifier(n_estimators=3).fit(features, labels)
    fresh = clone(model)
    assert fresh.trees_ is None
    assert fresh.n_estimators == 3


def test_get_set_params():
    model = RidgeRegressor(alpha=2.0)
    assert model.get_params() == {"alpha": 2.0}
    model.set_params(alpha=5.0)
    assert model.alpha == 5.0
    with pytest.raises(ValueError):
        model.set_params(bogus=1)


def test_predict_proba_rows_sum_to_one():
    features, labels = make_blobs(seed=8)
    for model in (
        LogisticRegression(),
        RandomForestClassifier(n_estimators=5),
        GaussianNB(),
        KNNClassifier(),
        MLPClassifier(epochs=10),
        GradientBoostingClassifier(n_estimators=5),
    ):
        model.fit(features, labels)
        proba = model.predict_proba(features[:10])
        assert proba.shape == (10, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()


def test_tree_depth_limit_respected():
    features, labels = make_blobs(n=200, seed=9)
    tree = DecisionTreeClassifier(max_depth=2).fit(features, labels)
    assert tree.depth <= 2


def test_tree_min_samples_leaf():
    features, targets = make_linear_regression(n=50)
    tree = DecisionTreeRegressor(min_samples_leaf=20).fit(features, targets)
    # With leaves of >= 20 of 50 samples the tree is at most depth 2-ish;
    # check it produces at most a handful of distinct predictions.
    assert len(np.unique(tree.predict(features))) <= 4


def test_hyperparameter_validation():
    with pytest.raises(ValueError):
        RidgeRegressor(alpha=-1.0)
    with pytest.raises(ValueError):
        SGDClassifier(loss="absolute")
    with pytest.raises(ValueError):
        LinearSVC(C=0)
    with pytest.raises(ValueError):
        KNNClassifier(n_neighbors=0)
    with pytest.raises(ValueError):
        RandomForestClassifier(n_estimators=0)
    with pytest.raises(ValueError):
        GradientBoostingRegressor(subsample=0.0)
    with pytest.raises(ValueError):
        MultinomialNB(alpha=0.0)


def test_seed_reproducibility():
    features, labels = make_blobs(seed=11)
    a = RandomForestClassifier(n_estimators=5, seed=3).fit(features, labels)
    b = RandomForestClassifier(n_estimators=5, seed=3).fit(features, labels)
    assert np.array_equal(a.predict(features), b.predict(features))
