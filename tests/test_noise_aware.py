"""Tests for the noise-aware learning extensions (Section 6.5 suggestion 3)."""

import numpy as np
import pytest

from repro.ml import LogisticRegression
from repro.ml.noise_aware import LabelSmoothingClassifier, PruneAndRetrainClassifier


def noisy_classification(n=300, flip=0.2, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 4))
    clean_labels = (features[:, 0] + 0.5 * features[:, 1] > 0).astype(int)
    noisy = clean_labels.copy()
    flips = rng.choice(n, size=int(flip * n), replace=False)
    noisy[flips] = 1 - noisy[flips]
    return features, clean_labels, noisy


class TestLabelSmoothing:
    def test_learns(self):
        features, clean, noisy = noisy_classification(flip=0.0, seed=1)
        model = LabelSmoothingClassifier(epsilon=0.1)
        model.fit(features[:200], noisy[:200])
        assert model.score(features[200:], clean[200:]) > 0.85

    def test_epsilon_zero_matches_logistic(self):
        features, clean, _ = noisy_classification(flip=0.0, seed=2)
        smooth = LabelSmoothingClassifier(epsilon=0.0).fit(features, clean)
        plain = LogisticRegression().fit(features, clean)
        agreement = np.mean(smooth.predict(features) == plain.predict(features))
        assert agreement > 0.97

    def test_probabilities_tempered(self):
        features, clean, _ = noisy_classification(flip=0.0, seed=3)
        confident = LabelSmoothingClassifier(epsilon=0.0).fit(features, clean)
        tempered = LabelSmoothingClassifier(epsilon=0.4).fit(features, clean)
        p_confident = confident.predict_proba(features).max(axis=1).mean()
        p_tempered = tempered.predict_proba(features).max(axis=1).mean()
        assert p_tempered < p_confident

    def test_validation(self):
        with pytest.raises(ValueError):
            LabelSmoothingClassifier(epsilon=1.0)


class TestPruneAndRetrain:
    def test_prunes_flipped_labels(self):
        features, clean, noisy = noisy_classification(flip=0.2, seed=4)
        model = PruneAndRetrainClassifier(seed=0)
        model.fit(features[:220], noisy[:220])
        assert model.kept_fraction_ < 1.0
        assert model.score(features[220:], clean[220:]) > 0.8

    def test_beats_plain_model_under_noise(self):
        scores_robust, scores_plain = [], []
        for seed in range(3):
            features, clean, noisy = noisy_classification(flip=0.3, seed=seed)
            robust = PruneAndRetrainClassifier(seed=seed)
            robust.fit(features[:220], noisy[:220])
            plain = LogisticRegression()
            plain.fit(features[:220], noisy[:220])
            scores_robust.append(robust.score(features[220:], clean[220:]))
            scores_plain.append(plain.score(features[220:], clean[220:]))
        assert np.mean(scores_robust) >= np.mean(scores_plain) - 0.02

    def test_small_sample_fallback(self):
        features, clean, _ = noisy_classification(n=6, flip=0.0, seed=5)
        model = PruneAndRetrainClassifier(n_folds=4)
        model.fit(features, clean)
        assert model.kept_fraction_ == 1.0
        assert len(model.predict(features)) == 6

    def test_never_prunes_class_away(self):
        rng = np.random.default_rng(6)
        features = rng.normal(size=(60, 2))
        labels = np.array([0] * 55 + [1] * 5)
        model = PruneAndRetrainClassifier(seed=0).fit(features, labels)
        # Both classes must survive to prediction time.
        assert set(model.classes_) == {0, 1}

    def test_proba_shape(self):
        features, clean, noisy = noisy_classification(seed=7)
        model = PruneAndRetrainClassifier(seed=0).fit(features, noisy)
        proba = model.predict_proba(features[:10])
        assert proba.shape == (10, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PruneAndRetrainClassifier(n_folds=1)
