"""Tier-1 tests for the observability layer (repro.observability).

The layer's contract, proven here:

- spans/metrics/ledger round-trip through their transport forms;
- worker span buffers merge deterministically (same ids, same tree)
  regardless of worker count;
- telemetry is invisible to the suite: the checkpoint store contents
  are byte-identical between an observability-disabled serial run and a
  fully instrumented pooled run.
"""

import json
import math
import sqlite3

import pytest

from repro.benchmark import run_detection_suite
from repro.datagen import generate
from repro.detectors import MaxEntropyDetector, MVDetector, SDDetector
from repro.observability import (
    LEDGER_SCHEMA_VERSION,
    MetricsRegistry,
    RunLedger,
    Telemetry,
    Tracer,
    chrome_trace,
    chrome_trace_from_ledger,
    current_telemetry,
    read_ledger,
    render_metrics_summary,
    runtimes_from_ledger,
    telemetry_scope,
    write_bench_snapshot,
)
from repro.observability.ledger import (
    STAGE_FINISHED,
    STAGE_STARTED,
    UNIT_FINALIZED,
)
from repro.observability.trace import ATTEMPT, STAGE, SUITE, UNIT
from repro.parallel import ProcessPoolExecutor, null_sleep
from repro.resilience import SuiteCheckpoint


class StepClock:
    """Deterministic monotonic clock: each reading advances one tick."""

    def __init__(self, tick: float = 2.0 ** -10):
        self.ticks = 0
        self.tick = tick

    def __call__(self) -> float:
        self.ticks += 1
        return self.ticks * self.tick


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_spans_nest_under_the_open_stack(self):
        tracer = Tracer(clock=StepClock())
        with tracer.span("suite", SUITE):
            with tracer.span("stage", STAGE):
                with tracer.span("unit", UNIT):
                    pass
        suite, stage, unit = tracer.spans
        assert suite.parent_id is None
        assert stage.parent_id == suite.span_id
        assert unit.parent_id == stage.span_id
        assert all(not s.open for s in tracer.spans)
        assert unit.end <= stage.end <= suite.end

    def test_finish_closes_deeper_spans_left_open(self):
        tracer = Tracer(clock=StepClock())
        outer = tracer.begin("outer", STAGE)
        tracer.begin("inner", UNIT)  # crashed code never finished it
        tracer.finish(outer)
        assert all(not s.open for s in tracer.spans)
        assert tracer.current_id() is None

    def test_drain_ships_finished_keeps_open(self):
        tracer = Tracer(clock=StepClock())
        open_span = tracer.begin("stage", STAGE)
        with tracer.span("unit", UNIT):
            pass
        shipped = tracer.drain()
        assert [p["name"] for p in shipped] == ["unit"]
        assert [s.name for s in tracer.spans] == ["stage"]
        tracer.finish(open_span)

    def test_adopt_remaps_ids_deterministically(self):
        payloads = []
        worker = Tracer(clock=StepClock(), worker="worker-9")
        with worker.span("unit", UNIT):
            with worker.span("attempt-1", ATTEMPT):
                pass
        payloads = worker.drain()

        def merged_tree():
            driver = Tracer(clock=StepClock())
            stage = driver.begin("stage", STAGE)
            driver.adopt(payloads, parent_id=driver.current_id())
            driver.finish(stage)
            return [
                (s.span_id, s.parent_id, s.name, s.worker)
                for s in driver.spans
            ]

        first, second = merged_tree(), merged_tree()
        assert first == second  # same payloads, same order -> same ids
        names = {name: (sid, pid) for sid, pid, name, _ in first}
        assert names["unit"][1] == names["stage"][0]
        assert names["attempt-1"][1] == names["unit"][0]

    def test_span_payload_round_trip_with_open_end(self):
        tracer = Tracer(clock=StepClock())
        span = tracer.begin("x", UNIT, method="MVD")
        payload = span.to_payload()
        assert payload["end"] is None  # NaN never reaches JSON
        from repro.observability import Span

        back = Span.from_payload(payload)
        assert back.open and back.attrs == {"method": "MVD"}


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_snapshot_merge_is_additive_for_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for registry, n in ((a, 2), (b, 3)):
            registry.counter("units.ok").inc(n)
            registry.histogram("t").observe(0.01)
            registry.gauge("g").set(n)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["units.ok"] == 5
        assert snap["histograms"]["t"]["count"] == 2
        assert snap["gauges"]["g"] == 3.0  # last write wins

    def test_merge_order_independent_totals(self):
        parts = []
        for n in (1, 2, 3):
            r = MetricsRegistry()
            r.counter("c").inc(n)
            r.histogram("h").observe(n * 0.25)  # binary-exact values
            parts.append(r.snapshot())
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for p in parts:
            forward.merge(p)
        for p in reversed(parts):
            backward.merge(p)
        assert forward.snapshot() == backward.snapshot()

    def test_boundary_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("t", boundaries=(1.0, 2.0))
        with pytest.raises(ValueError, match="different"):
            registry.histogram("t", boundaries=(1.0, 5.0))

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_summary_renders_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.counter("units.ok").inc(4)
        registry.histogram("unit.compute_seconds").observe(0.2)
        text = render_metrics_summary(registry)
        assert "units.ok" in text and "unit.compute_seconds" in text
        assert render_metrics_summary(MetricsRegistry()).endswith(
            "no metrics recorded"
        )


# ----------------------------------------------------------------------
# Ledger
# ----------------------------------------------------------------------
class TestLedger:
    def test_round_trip_and_sequencing(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with RunLedger(path) as ledger:
            ledger.emit("run_started", workers=4)
            ledger.emit("unit_finalized", unit="u1", score=float("nan"))
        records = read_ledger(path)
        assert [r["seq"] for r in records] == [0, 1]
        assert records[0]["schema"] == LEDGER_SCHEMA_VERSION
        assert records[1]["score"] is None  # NaN encoded as null
        assert read_ledger(path, event="run_started")[0]["workers"] == 4

    def test_append_only_across_reopens(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with RunLedger(path) as ledger:
            ledger.emit("run_started")
        with RunLedger(path) as ledger:
            ledger.emit("run_started")
        assert len(read_ledger(path, event="run_started")) == 2

    def test_rejects_unknown_schema_version(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"schema": 999, "event": "x"}) + "\n")
        with pytest.raises(ValueError, match="unsupported ledger schema"):
            read_ledger(path)

    def test_rejects_non_object_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="JSON objects"):
            read_ledger(path)

    def test_emit_after_close_raises(self, tmp_path):
        ledger = RunLedger(tmp_path / "e.jsonl")
        ledger.close()
        with pytest.raises(ValueError, match="closed"):
            ledger.emit("run_started")


# ----------------------------------------------------------------------
# Telemetry facade + scope
# ----------------------------------------------------------------------
class TestTelemetryScope:
    def test_off_by_default_and_scoped_install(self):
        assert current_telemetry() is None
        telemetry = Telemetry()
        with telemetry_scope(telemetry):
            assert current_telemetry() is telemetry
        assert current_telemetry() is None

    def test_none_scope_is_a_no_op(self):
        with telemetry_scope(None) as installed:
            assert installed is None
            assert current_telemetry() is None

    def test_drain_absorb_round_trip(self):
        worker = Telemetry(tracer=Tracer(worker="worker-1"))
        with worker.span("unit", UNIT):
            pass
        worker.count("units.ok")
        transport = worker.drain_transport()
        assert worker.drain_transport() is None  # drained clean

        driver = Telemetry()
        with driver.span("stage", STAGE):
            driver.absorb_transport(transport)
        assert [s.worker for s in driver.tracer.by_category(UNIT)] == [
            "worker-1"
        ]
        assert driver.metrics.snapshot()["counters"]["units.ok"] == 1


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExport:
    def _payloads(self):
        tracer = Tracer(clock=StepClock())
        with tracer.span("stage", STAGE):
            with tracer.span("unit", UNIT, method="MVD"):
                pass
        worker = Tracer(clock=StepClock(), worker="worker-7")
        with worker.span("unit", UNIT):
            pass
        tracer.adopt(worker.drain())
        return tracer.to_payloads()

    def test_chrome_trace_shape(self):
        trace = chrome_trace(self._payloads())
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert {m["args"]["name"] for m in metadata} == {
            "driver", "worker-7"
        }
        assert len(spans) == 3
        assert all(e["dur"] >= 0 and "ts" in e for e in spans)
        json.dumps(trace, allow_nan=False)  # valid strict JSON

    def test_chrome_trace_marks_open_spans(self):
        tracer = Tracer(clock=StepClock())
        tracer.begin("hung", UNIT)
        (event,) = [
            e
            for e in chrome_trace(tracer.to_payloads())["traceEvents"]
            if e["ph"] == "X"
        ]
        assert event["dur"] == 0.0 and event["args"]["open"] is True

    def test_runtimes_from_ledger_sums_per_method(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with RunLedger(path) as ledger:
            ledger.emit(UNIT_FINALIZED, method="MVD", runtime_seconds=0.5)
            ledger.emit(UNIT_FINALIZED, method="MVD", runtime_seconds=0.25)
            ledger.emit(UNIT_FINALIZED, method="SD", runtime_seconds=None)
        assert runtimes_from_ledger(path) == {"MVD": 0.75}

    def test_bench_snapshot_is_strict_sorted_json(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        snapshot = write_bench_snapshot(
            path, "x", numbers={"speedup": 2.5}, context={"workers": 4}
        )
        on_disk = json.loads(path.read_text())
        assert on_disk == snapshot
        assert on_disk["schema"] == 1
        assert on_disk["numbers"]["speedup"] == 2.5


# ----------------------------------------------------------------------
# The determinism contract (the ISSUE's acceptance test)
# ----------------------------------------------------------------------
def _store_rows(path):
    with sqlite3.connect(path) as connection:
        return connection.execute(
            "SELECT unit, payload_json FROM checkpoints ORDER BY unit"
        ).fetchall()


def _run_suite(store, telemetry=None, executor=None):
    dataset = generate("SmartFactory", n_rows=120, seed=3)
    detectors = [MVDetector(), SDDetector(3.0), MaxEntropyDetector()]
    with SuiteCheckpoint.open(store, "obs-run") as checkpoint:
        with telemetry_scope(telemetry):
            return run_detection_suite(
                dataset,
                detectors,
                clock=StepClock(),
                sleep=null_sleep,
                checkpoint=checkpoint,
                executor=executor,
            )


class TestDeterminismContract:
    def test_pooled_instrumented_run_matches_plain_serial_run(self, tmp_path):
        """Telemetry on + 4 workers must not change a byte of suite output."""
        plain = tmp_path / "plain.sqlite"
        runs_off = _run_suite(plain)

        instrumented = tmp_path / "instrumented.sqlite"
        events = tmp_path / "events.jsonl"
        telemetry = Telemetry(ledger=RunLedger(events))
        runs_on = _run_suite(
            instrumented,
            telemetry=telemetry,
            executor=ProcessPoolExecutor(4),
        )
        telemetry.flush_to_ledger()
        telemetry.ledger.close()

        assert [r.to_payload() for r in runs_on] == [
            r.to_payload() for r in runs_off
        ]
        assert _store_rows(instrumented) == _store_rows(plain)

        # The merged span tree is complete: one stage span, one unit
        # child per detector, one attempt child per unit.
        tracer = telemetry.tracer
        (stage_span,) = tracer.by_category(STAGE)
        units = tracer.by_category(UNIT)
        assert len(units) == 3
        assert all(u.parent_id == stage_span.span_id for u in units)
        for unit in units:
            children = tracer.children_of(unit.span_id)
            assert [c.category for c in children] == [ATTEMPT]
        assert all(not s.open for s in tracer.spans)
        assert {u.attrs["outcome"] for u in units} == {"ok"}
        assert all(u.worker.startswith("worker-") for u in units)

        # Metrics merged from the workers are the serial totals.
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["units.ok"] == 3
        assert counters["units.executed"] == 3
        histograms = telemetry.metrics.snapshot()["histograms"]
        assert histograms["unit.compute_seconds"]["count"] == 3
        assert histograms["unit.merge_wait_seconds"]["count"] == 3

        # The ledger brackets the stage and finalizes every unit, and
        # its span events rebuild a valid Chrome trace.
        assert len(read_ledger(events, event=STAGE_STARTED)) == 1
        assert len(read_ledger(events, event=STAGE_FINISHED)) == 1
        finalized = read_ledger(events, event=UNIT_FINALIZED)
        assert [r["method"] for r in finalized] == [
            "MVD", "SD", "MaxEntropy"
        ]
        assert all(r["ok"] for r in finalized)
        trace = chrome_trace_from_ledger(events)
        assert len(
            [e for e in trace["traceEvents"] if e["ph"] == "X"]
        ) == len(telemetry.tracer.spans)

    def test_serial_instrumented_run_matches_plain_serial_run(self, tmp_path):
        plain = tmp_path / "plain.sqlite"
        runs_off = _run_suite(plain)
        instrumented = tmp_path / "instrumented.sqlite"
        telemetry = Telemetry()
        runs_on = _run_suite(instrumented, telemetry=telemetry)
        assert [r.to_payload() for r in runs_on] == [
            r.to_payload() for r in runs_off
        ]
        assert _store_rows(instrumented) == _store_rows(plain)
        assert len(telemetry.tracer.by_category(UNIT)) == 3
        # Serial units are recorded by the driver itself.
        assert {u.worker for u in telemetry.tracer.by_category(UNIT)} == {""}
