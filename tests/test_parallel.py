"""Tier-1 tests for the parallel execution engine (repro.parallel).

The engine's contract: for any executor (serial reference, seeded
shuffled completion order, N-worker process pool), the finalized suite
output -- payload for payload -- is identical.  These tests drive the
real detection / repair / scenario plans with deterministic injected
clocks so "identical" means byte-identical canonical JSON, including
failure records and circuit-breaker quarantine skips.
"""

import json
import math

import pytest

from repro.benchmark import (
    evaluate_scenarios,
    run_detection_suite,
    run_repair_suite,
)
from repro.datagen import generate
from repro.detectors import MaxEntropyDetector, MVDetector, SDDetector
from repro.parallel import (
    ExecutionPlan,
    ProcessPoolExecutor,
    SerialExecutor,
    ShuffledExecutor,
    StageAdapter,
    UnitSpec,
    execute_plan,
    make_executor,
    null_sleep,
)
from repro.repair import GroundTruthRepair, MeanModeImputeRepair
from repro.resilience import (
    CircuitBreaker,
    CorruptingRepair,
    CrashingDetector,
    FailureRecord,
    SuiteCheckpoint,
)


class StepClock:
    """Deterministic monotonic clock: each reading advances one tick."""

    def __init__(self, tick: float = 2.0 ** -10):
        self.ticks = 0
        self.tick = tick

    def __call__(self) -> float:
        self.ticks += 1
        return self.ticks * self.tick


def _dataset():
    return generate("SmartFactory", n_rows=120, seed=3)


def _canonical(runs) -> bytes:
    return json.dumps(
        [r.to_payload() for r in runs], sort_keys=True
    ).encode()


def _detectors():
    return [MVDetector(), SDDetector(3.0), MaxEntropyDetector()]


def _detection_runs(executor, breaker=None, with_crash=False):
    detectors = _detectors()
    if with_crash:
        detectors.insert(1, CrashingDetector(MemoryError, "boom"))
    return run_detection_suite(
        _dataset(),
        detectors,
        clock=StepClock(),
        sleep=null_sleep,
        breaker=breaker,
        executor=executor,
    )


class TestDetectionEquivalence:
    def test_shuffled_orders_match_serial(self):
        reference = _canonical(_detection_runs(None, with_crash=True))
        for seed in range(6):
            runs = _detection_runs(ShuffledExecutor(seed), with_crash=True)
            assert _canonical(runs) == reference

    @pytest.mark.parametrize("workers", [2, 3, 5])
    def test_pool_matches_serial_for_any_worker_count(self, workers):
        reference = _canonical(_detection_runs(None, with_crash=True))
        runs = _detection_runs(
            ProcessPoolExecutor(workers), with_crash=True
        )
        assert _canonical(runs) == reference


def _repair_grid(executor, breaker):
    """Detector x repair grid where one repair fails on every unit.

    With breaker threshold 2 the failing repair is quarantined mid-plan:
    its third unit must come back as a quarantine-skip record, identical
    for every executor even when a pool worker already executed it.
    """
    dataset = _dataset()
    detection_runs = run_detection_suite(
        dataset, _detectors(), clock=StepClock(), sleep=null_sleep
    )
    detections = {
        r.detector: set(r.result.cells)
        for r in detection_runs
        if not r.failed and r.result.n_detected
    }
    assert len(detections) >= 3
    repairs = [
        CorruptingRepair(MeanModeImputeRepair(), mode="misalign"),
        GroundTruthRepair(),
    ]
    return run_repair_suite(
        dataset,
        detections,
        repairs,
        clock=StepClock(),
        sleep=null_sleep,
        breaker=breaker,
        executor=executor,
    )


class TestRepairEquivalenceWithBreaker:
    def test_shuffled_orders_replay_breaker_identically(self):
        reference_breaker = CircuitBreaker(threshold=2)
        reference = _repair_grid(None, reference_breaker)
        assert reference_breaker.is_quarantined("Impute-Mean")
        skips = [
            r for r in reference
            if r.failure_record is not None and r.failure_record.quarantined
        ]
        assert skips, "the grid must exercise a mid-plan quarantine"
        for seed in range(6):
            breaker = CircuitBreaker(threshold=2)
            runs = _repair_grid(ShuffledExecutor(seed), breaker)
            assert _canonical(runs) == _canonical(reference)
            assert breaker.quarantined == reference_breaker.quarantined

    def test_pool_replays_breaker_identically(self):
        reference_breaker = CircuitBreaker(threshold=2)
        reference = _repair_grid(None, reference_breaker)
        breaker = CircuitBreaker(threshold=2)
        runs = _repair_grid(ProcessPoolExecutor(2), breaker)
        assert _canonical(runs) == _canonical(reference)
        assert breaker.quarantined == reference_breaker.quarantined


class TestScenarioEquivalence:
    def _evaluate(self, executor):
        dataset = _dataset()
        return evaluate_scenarios(
            dataset,
            dataset.dirty,
            "dirty",
            "DT",
            scenario_names=("S1", "S4"),
            n_seeds=3,
            sample_rows=60,
            clock=StepClock(),
            sleep=null_sleep,
            executor=executor,
        )

    def test_pool_matches_serial(self):
        reference = self._evaluate(None)
        pooled = self._evaluate(ProcessPoolExecutor(3))
        assert pooled.scores == reference.scores
        assert set(pooled.failures) == set(reference.failures)

    def test_shuffled_matches_serial(self):
        reference = self._evaluate(None)
        shuffled = self._evaluate(ShuffledExecutor(11))
        assert shuffled.scores == reference.scores


# ----------------------------------------------------------------------
# Driver-level tests on a tiny synthetic stage
# ----------------------------------------------------------------------
def _tiny_execute(shared, spec):
    value = shared["base"] + spec.params["x"]
    record = None
    if spec.params.get("fail"):
        record = FailureRecord(
            method=spec.method,
            stage="detection",
            category="capability",
            error_type="MemoryError",
            message="synthetic",
        )
    return {"value": value, "failure": record}


def _tiny_to_payload(run):
    return {
        "value": run["value"],
        "failure": (
            run["failure"].to_payload() if run["failure"] is not None else None
        ),
    }


def _tiny_from_payload(payload):
    record = (
        FailureRecord.from_payload(payload["failure"])
        if payload["failure"] is not None
        else None
    )
    return {"value": payload["value"], "failure": record}


def _tiny_quarantine(shared, spec, reason):
    record = FailureRecord.quarantine_skip(spec.method, "detection", reason)
    return {"value": None, "failure": record}


def _tiny_failure(run):
    return run["failure"]


_TINY_ADAPTER = StageAdapter(
    stage="detection",
    execute=_tiny_execute,
    to_payload=_tiny_to_payload,
    from_payload=_tiny_from_payload,
    quarantine_skip=_tiny_quarantine,
    failure_of=_tiny_failure,
)


def _tiny_plan(n=8, fail_method=None):
    units = [
        UnitSpec(
            i,
            f"detection/tiny/u{i}///0",
            "flaky" if fail_method and i in fail_method else f"m{i}",
            {"x": i, "fail": bool(fail_method and i in fail_method)},
        )
        for i in range(n)
    ]
    return ExecutionPlan(_TINY_ADAPTER, {"base": 100}, units)


class TestExecutePlanDriver:
    def test_plan_rejects_misordered_units(self):
        units = [
            UnitSpec(1, "detection/tiny/a///0", "m", {}),
            UnitSpec(0, "detection/tiny/b///0", "m", {}),
        ]
        with pytest.raises(ValueError, match="canonical order"):
            ExecutionPlan(_TINY_ADAPTER, {}, units)

    def test_serial_and_shuffled_agree(self):
        reference = execute_plan(_tiny_plan())
        for seed in range(5):
            runs = execute_plan(_tiny_plan(), executor=ShuffledExecutor(seed))
            assert [r["value"] for r in runs] == [
                r["value"] for r in reference
            ]

    def test_broken_executor_reports_missing_units(self):
        class LossyExecutor:
            def run(self, plan, pending, should_execute):
                for spec in pending[:-2]:
                    yield spec.index, plan.adapter.execute(plan.shared, spec)

        with pytest.raises(RuntimeError, match="never completed"):
            execute_plan(_tiny_plan(), executor=LossyExecutor())

    def test_breaker_quarantines_consistently_out_of_order(self):
        # Units 1, 3, 5 share a failing method with threshold 2: unit 5
        # must finalize as a quarantine skip under every completion order.
        fail = {1, 3, 5}
        reference_breaker = CircuitBreaker(threshold=2)
        reference = execute_plan(
            _tiny_plan(fail_method=fail), breaker=reference_breaker
        )
        assert reference[5]["failure"].quarantined
        assert reference[5]["value"] is None  # never executed serially
        for seed in range(5):
            breaker = CircuitBreaker(threshold=2)
            runs = execute_plan(
                _tiny_plan(fail_method=fail),
                executor=ShuffledExecutor(seed),
                breaker=breaker,
            )
            assert _tiny_to_payload(runs[5]) == _tiny_to_payload(
                reference[5]
            )
            assert breaker.quarantined == reference_breaker.quarantined

    def test_progress_interrupt_then_resume_matches(self, tmp_path):
        """A kill at an exact unit boundary resumes without re-execution.

        The progress callback raising KeyboardInterrupt models the
        operator killing the run right after unit 3 finalized; batched
        checkpoint writes must still be visible on resume.
        """
        path = str(tmp_path / "ckpt.sqlite")
        reference = execute_plan(
            _tiny_plan(), checkpoint=SuiteCheckpoint.open(path, "ref")
        )

        executed = []

        def record_execute(spec, run):
            executed.append(spec.index)
            if spec.index == 3:
                raise KeyboardInterrupt

        with SuiteCheckpoint.open(path, "run") as ckpt:
            with pytest.raises(KeyboardInterrupt):
                execute_plan(
                    _tiny_plan(), checkpoint=ckpt, progress=record_execute
                )
            assert len(ckpt.completed_units()) == 4  # units 0-3 persisted
        with SuiteCheckpoint.open(path, "run", resume=True) as ckpt:
            resumed = execute_plan(_tiny_plan(), checkpoint=ckpt)
        assert [r["value"] for r in resumed] == [
            r["value"] for r in reference
        ]

    def test_cached_units_are_not_reexecuted(self, tmp_path):
        path = str(tmp_path / "ckpt.sqlite")
        with SuiteCheckpoint.open(path, "run") as ckpt:
            execute_plan(_tiny_plan(), checkpoint=ckpt)
        calls = []

        def spy_progress(spec, run):
            calls.append(spec.index)

        with SuiteCheckpoint.open(path, "run", resume=True) as ckpt:
            runs = execute_plan(
                _tiny_plan(), checkpoint=ckpt, progress=spy_progress
            )
        # Every unit finalizes (progress fires) but all came from cache:
        # values match without _tiny_execute having access to "base" drift.
        assert calls == list(range(8))
        assert [r["value"] for r in runs] == [100 + i for i in range(8)]


class TestExecutorConstruction:
    def test_make_executor_serial_cases(self):
        assert make_executor(None) is None
        assert make_executor(1) is None

    def test_make_executor_pool(self):
        executor = make_executor(4)
        assert isinstance(executor, ProcessPoolExecutor)
        assert executor.workers == 4

    @pytest.mark.parametrize("workers", [0, -1])
    def test_make_executor_rejects_nonpositive(self, workers):
        with pytest.raises(ValueError, match="workers"):
            make_executor(workers)

    def test_pool_validates_arguments(self):
        with pytest.raises(ValueError):
            ProcessPoolExecutor(0)
        with pytest.raises(ValueError):
            ProcessPoolExecutor(2, chunk_size=0)

    def test_serial_executor_skips_quarantined_lazily(self):
        # The serial reference consults should_execute per unit, so a
        # quarantine tripped by unit k is honoured by unit k+1 without
        # the executor being restarted.
        seen = []

        def should_execute(spec):
            seen.append(spec.index)
            return spec.index != 2

        plan = _tiny_plan(4)
        runs = dict(
            SerialExecutor().run(plan, list(plan.units), should_execute)
        )
        assert sorted(runs) == [0, 1, 3]
        assert seen == [0, 1, 2, 3]


class TestBreakerSnapshotMerge:
    def test_snapshot_round_trip(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure("A", "first")
        breaker.record_failure("A", "second")
        breaker.record_failure("B", "only")
        clone = CircuitBreaker.from_snapshot(breaker.snapshot())
        assert clone.threshold == 2
        assert clone.is_quarantined("A")
        assert not clone.is_quarantined("B")
        assert clone.failures("B") == 1
        assert clone.reason("A") == breaker.reason("A")

    def test_merge_is_sticky_and_pessimistic(self):
        left = CircuitBreaker(threshold=2)
        left.record_failure("A", "left-1")
        right = CircuitBreaker(threshold=2)
        right.record_failure("A", "right-1")
        right.record_failure("A", "right-2")
        left.merge(right)
        assert left.is_quarantined("A")
        assert "right-2" in left.reason("A")
        # Merging a healthier view never lifts a quarantine.
        healthy = CircuitBreaker(threshold=2)
        healthy.record_success("A")
        left.merge(healthy)
        assert left.is_quarantined("A")

    def test_merge_keeps_first_reason(self):
        first = CircuitBreaker(threshold=1)
        first.record_failure("A", "original")
        later = CircuitBreaker(threshold=1)
        later.record_failure("A", "newer")
        first.merge(later)
        assert "original" in first.reason("A")


class TestCheckpointBatching:
    def test_put_batches_commits_until_interval(self, tmp_path):
        import sqlite3

        from repro.repository import CheckpointStore

        path = str(tmp_path / "ckpt.sqlite")
        store = CheckpointStore(path, commit_interval=4)
        try:
            for i in range(3):
                store.put("r", f"u{i}", {"i": i})
            # Same connection sees pending rows; a second connection
            # only sees committed ones.
            assert len(store.units("r")) == 3
            other = sqlite3.connect(path)
            count = other.execute(
                "SELECT COUNT(*) FROM checkpoints"
            ).fetchone()[0]
            assert count == 0
            store.put("r", "u3", {"i": 3})  # 4th put hits the interval
            count = other.execute(
                "SELECT COUNT(*) FROM checkpoints"
            ).fetchone()[0]
            assert count == 4
            other.close()
        finally:
            store.close()

    def test_close_flushes_pending_batch(self, tmp_path):
        from repro.repository import CheckpointStore

        path = str(tmp_path / "ckpt.sqlite")
        store = CheckpointStore(path, commit_interval=100)
        store.put("r", "u", {"x": 1})
        store.close()
        reopened = CheckpointStore(path)
        try:
            assert reopened.get("r", "u") == {"x": 1}
        finally:
            reopened.close()

    def test_commit_interval_validation(self):
        from repro.repository import CheckpointStore

        with pytest.raises(ValueError):
            CheckpointStore(commit_interval=0)


class TestParallelLintCoverage:
    def test_parallel_package_is_lint_clean_and_not_allowlisted(self):
        import sys
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        sys.path.insert(0, str(repo_root / "tools"))
        try:
            import check_exceptions
        finally:
            sys.path.pop(0)
        package = repo_root / "src" / "repro" / "parallel"
        files = sorted(p.name for p in package.glob("*.py"))
        assert files == ["__init__.py", "engine.py", "plan.py"]
        for path in package.glob("*.py"):
            relative = path.relative_to(repo_root / "src").as_posix()
            assert relative not in check_exceptions.ALLOWLIST
            assert list(check_exceptions.check_file(path)) == []
