"""Tests for the data profiler (Metanome analogue)."""

import math

import numpy as np
import pytest

from repro.dataset import CATEGORICAL, NUMERICAL, Schema, Table
from repro.profiling import (
    discover_inclusion_dependencies,
    profile_table,
)
from repro.profiling.profiler import profile_column


@pytest.fixture
def table():
    schema = Schema.from_pairs(
        [
            ("id", NUMERICAL),
            ("amount", NUMERICAL),
            ("city", CATEGORICAL),
            ("city_copy", CATEGORICAL),
        ]
    )
    rng = np.random.default_rng(0)
    cities = ["berlin", "munich", "hamburg"]
    chosen = [cities[int(rng.integers(3))] for _ in range(50)]
    return Table(
        schema,
        {
            "id": [float(i) for i in range(50)],
            "amount": [10.0 * i for i in range(49)] + [None],
            "city": chosen,
            "city_copy": chosen[:25] + ["berlin"] * 25,
        },
    )


class TestColumnProfile:
    def test_numeric_statistics(self, table):
        profile = profile_column(table, "amount")
        assert profile.n_missing == 1
        assert profile.null_ratio == pytest.approx(1 / 50)
        assert profile.min_value == 0.0
        assert profile.max_value == 480.0
        assert profile.quantiles["q50"] == pytest.approx(240.0)
        assert profile.inferred_kind == "numerical"

    def test_candidate_key(self, table):
        assert profile_column(table, "id").is_candidate_key
        assert not profile_column(table, "city").is_candidate_key

    def test_shape_conformity(self, table):
        dirty = table.copy()
        dirty.set_cell(0, "city", "b3rl1n")
        profile = profile_column(dirty, "city")
        assert profile.dominant_shape is not None
        assert profile.shape_conformity < 1.0

    def test_entropy(self):
        schema = Schema.from_pairs([("c", CATEGORICAL)])
        uniform = Table(schema, {"c": ["a", "b", "c", "d"]})
        constant = Table(schema, {"c": ["a", "a", "a", "a"]})
        assert profile_column(uniform, "c").entropy == pytest.approx(2.0)
        assert profile_column(constant, "c").entropy == 0.0

    def test_inferred_kind_on_corrupted_numeric(self, table):
        dirty = table.copy()
        dirty.set_cell(0, "amount", "oops")
        profile = profile_column(dirty, "amount")
        assert profile.declared_kind == "numerical"
        assert profile.inferred_kind == "categorical"

    def test_empty_column(self):
        schema = Schema.from_pairs([("c", CATEGORICAL)])
        profile = profile_column(Table(schema, {"c": [None, None]}), "c")
        assert profile.null_ratio == 1.0
        assert profile.n_distinct == 0
        assert profile.entropy == 0.0


class TestTableProfile:
    def test_candidate_keys(self, table):
        profile = profile_table(table)
        assert "id" in profile.candidate_keys
        assert "city" not in profile.candidate_keys
        assert profile.n_rows == 50

    def test_unknown_column(self, table):
        with pytest.raises(KeyError):
            profile_table(table).column("ghost")


class TestInclusionDependencies:
    def test_subset_detected(self, table):
        findings = discover_inclusion_dependencies(table)
        # city_copy's values are a subset of city's (both directions hold
        # only if the sets are equal).
        assert ("city_copy", "city") in findings

    def test_self_not_reported(self, table):
        findings = discover_inclusion_dependencies(table)
        assert all(a != b for a, b in findings)

    def test_approximate_coverage(self):
        schema = Schema.from_pairs([("a", CATEGORICAL), ("b", CATEGORICAL)])
        t = Table(
            schema,
            {"a": ["x", "y", "z", "OUTLIER"], "b": ["x", "y", "z", "w"]},
        )
        assert ("a", "b") not in discover_inclusion_dependencies(t, 1.0)
        assert ("a", "b") in discover_inclusion_dependencies(t, 0.7)

    def test_validation(self, table):
        with pytest.raises(ValueError):
            discover_inclusion_dependencies(table, min_coverage=0.0)
