"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.dataset import CATEGORICAL, NUMERICAL, Schema, Table
from repro.dataset.encoding import TableEncoder
from repro.dataset.splits import train_test_split
from repro.dataset.table import coerce_float, values_equal
from repro.metrics import detection_scores, iou
from repro.metrics.model import precision_recall_f1, silhouette_score

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
cell_value = st.one_of(
    st.none(),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.text(
        alphabet="abcxyz019 ._-", min_size=0, max_size=8
    ),
)


@st.composite
def small_tables(draw):
    n_rows = draw(st.integers(min_value=1, max_value=12))
    n_numeric = draw(st.integers(min_value=0, max_value=3))
    n_categorical = draw(st.integers(min_value=0, max_value=3))
    assume(n_numeric + n_categorical >= 1)
    pairs = [(f"n{i}", NUMERICAL) for i in range(n_numeric)] + [
        (f"c{i}", CATEGORICAL) for i in range(n_categorical)
    ]
    schema = Schema.from_pairs(pairs)
    columns = {
        name: draw(
            st.lists(cell_value, min_size=n_rows, max_size=n_rows)
        )
        for name, _ in pairs
    }
    return Table(schema, columns)


# ----------------------------------------------------------------------
# Table invariants
# ----------------------------------------------------------------------
@given(small_tables())
@settings(max_examples=60, deadline=None)
def test_diff_with_self_is_empty(table):
    assert table.diff_cells(table) == set()
    assert table.diff_cells(table.copy()) == set()


@given(small_tables())
@settings(max_examples=60, deadline=None)
def test_diff_is_symmetric(table):
    other = table.copy()
    rng = np.random.default_rng(0)
    # Perturb a few cells.
    for _ in range(min(3, table.n_rows)):
        row = int(rng.integers(table.n_rows))
        col = table.column_names[int(rng.integers(table.n_columns))]
        other.set_cell(row, col, "perturbed-value-xyz")
    assert table.diff_cells(other) == other.diff_cells(table)


@given(small_tables())
@settings(max_examples=40, deadline=None)
def test_csv_round_trip_preserves_cells(table):
    import os
    import tempfile

    fd, path = tempfile.mkstemp(suffix=".csv")
    os.close(fd)
    try:
        table.to_csv(path)
        loaded = Table.from_csv(path, table.schema)
    finally:
        os.unlink(path)
    assert loaded.n_rows == table.n_rows
    assert table.diff_cells(loaded) == set()


@given(small_tables())
@settings(max_examples=60, deadline=None)
def test_select_rows_preserves_content(table):
    indices = list(range(table.n_rows))[::-1]
    sub = table.select_rows(indices)
    for new_pos, original in enumerate(indices):
        for col in table.column_names:
            assert values_equal(
                sub.get_cell(new_pos, col), table.get_cell(original, col)
            )


@given(cell_value)
@settings(max_examples=200, deadline=None)
def test_values_equal_reflexive(value):
    assert values_equal(value, value)


@given(cell_value, cell_value)
@settings(max_examples=200, deadline=None)
def test_values_equal_symmetric(a, b):
    assert values_equal(a, b) == values_equal(b, a)


@given(st.floats(allow_nan=False, allow_infinity=False, width=32))
@settings(max_examples=100, deadline=None)
def test_coerce_float_round_trips_finite_numbers(value):
    assert coerce_float(value) == float(value)
    assert coerce_float(repr(float(value))) == pytest.approx(
        float(value), rel=1e-12, abs=1e-300
    )


# ----------------------------------------------------------------------
# Encoding invariants
# ----------------------------------------------------------------------
@given(small_tables())
@settings(max_examples=40, deadline=None)
def test_encoder_output_is_finite_and_stable_width(table):
    encoder = TableEncoder()
    features = encoder.fit_transform(table)
    assert features.shape == (table.n_rows, encoder.n_features)
    assert np.isfinite(features).all()
    again = encoder.transform(table)
    assert np.array_equal(features, again)


# ----------------------------------------------------------------------
# Metric invariants
# ----------------------------------------------------------------------
cells = st.sets(
    st.tuples(st.integers(0, 30), st.sampled_from(["a", "b", "c"])),
    max_size=25,
)


@given(cells, cells)
@settings(max_examples=100, deadline=None)
def test_detection_scores_bounds(detected, actual):
    scores = detection_scores(detected, actual)
    assert 0.0 <= scores.precision <= 1.0
    assert 0.0 <= scores.recall <= 1.0
    assert 0.0 <= scores.f1 <= 1.0
    assert scores.true_positives + scores.false_positives == len(detected)
    assert scores.true_positives + scores.false_negatives == len(actual)
    if scores.precision and scores.recall:
        harmonic = (
            2 * scores.precision * scores.recall
            / (scores.precision + scores.recall)
        )
        assert scores.f1 == pytest.approx(harmonic)


@given(cells, cells)
@settings(max_examples=100, deadline=None)
def test_iou_bounds_and_symmetry(a, b):
    value = iou(a, b)
    assert 0.0 <= value <= 1.0
    assert value == iou(b, a)
    assert iou(a, a) == 1.0


@given(
    st.lists(st.integers(0, 3), min_size=2, max_size=40),
    st.integers(0, 1000),
)
@settings(max_examples=60, deadline=None)
def test_f1_perfect_only_when_equal(labels, seed):
    rng = np.random.default_rng(seed)
    predictions = list(labels)
    _, _, f1_same = precision_recall_f1(labels, predictions)
    assert f1_same == 1.0
    # Corrupt one prediction (if another label value exists).
    if len(set(labels)) > 1:
        i = int(rng.integers(len(predictions)))
        others = [v for v in set(labels) if v != predictions[i]]
        predictions[i] = others[0]
        _, _, f1_off = precision_recall_f1(labels, predictions)
        assert f1_off < 1.0


@given(st.integers(10, 200), st.floats(0.05, 0.5), st.integers(0, 10_000))
@settings(max_examples=80, deadline=None)
def test_split_partition_property(n, fraction, seed):
    train, test = train_test_split(n, fraction, seed=seed)
    assert len(train) + len(test) == n
    assert set(train).isdisjoint(test)
    assert len(test) >= 1 and len(train) >= 1


@given(st.integers(2, 5), st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_silhouette_bounds(n_clusters, seed):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(30, 3))
    labels = rng.integers(0, n_clusters, size=30)
    value = silhouette_score(points, labels)
    assert -1.0 <= value <= 1.0


# ----------------------------------------------------------------------
# Injection invariants (beyond the mask==diff property in test_errors)
# ----------------------------------------------------------------------
@given(
    st.floats(0.0, 0.3),
    st.integers(0, 10_000),
    st.sampled_from(["missing", "outlier", "inconsistency"]),
)
@settings(max_examples=30, deadline=None)
def test_injection_never_changes_shape(rate, seed, kind):
    from repro.errors import (
        InconsistencyInjector,
        MissingValueInjector,
        OutlierInjector,
    )

    rng = np.random.default_rng(seed)
    schema = Schema.from_pairs([("x", NUMERICAL), ("c", CATEGORICAL)])
    table = Table(
        schema,
        {
            "x": rng.normal(size=20).tolist(),
            "c": [f"v{int(rng.integers(3))}" for _ in range(20)],
        },
    )
    injector = {
        "missing": MissingValueInjector(),
        "outlier": OutlierInjector(),
        "inconsistency": InconsistencyInjector(),
    }[kind]
    result = injector.inject(table, rate, rng)
    assert result.dirty.shape == table.shape
    assert result.dirty.schema == table.schema
