"""Additional property-based tests: GREL, profiling, BARAN transforms,
and ensemble monotonicity."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.dataset import CATEGORICAL, NUMERICAL, Schema, Table
from repro.profiling.profiler import profile_column
from repro.repair.baran import _learn_transformations, edit_distance
from repro.repair.grel import GrelError, GrelExpression

plain_text = st.text(alphabet="abcXYZ019 _.-", max_size=10)


class TestGrelProperties:
    @given(plain_text)
    @settings(max_examples=100, deadline=None)
    def test_trim_idempotent(self, value):
        expr = GrelExpression("value.trim()")
        once = expr.evaluate(value)
        twice = expr.evaluate(once)
        assert once == twice

    @given(plain_text)
    @settings(max_examples=100, deadline=None)
    def test_case_round_trip(self, value):
        lower = GrelExpression("value.toLowercase()").evaluate(value)
        upper = GrelExpression("value.toUppercase()").evaluate(lower)
        assert upper == value.upper()

    @given(st.floats(-1e6, 1e6, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_arithmetic_identity(self, x):
        assert GrelExpression("value + 0").evaluate(x) == pytest.approx(x)
        assert GrelExpression("value * 1").evaluate(x) == pytest.approx(x)

    @given(plain_text)
    @settings(max_examples=60, deadline=None)
    def test_string_literal_round_trips_through_parser(self, text):
        assume('"' not in text and "\\" not in text)
        expr = GrelExpression(f'"{text}"')
        assert expr.evaluate(None) == text

    @given(st.text(alphabet="()+*/=<>!@#$%", min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_garbage_never_crashes_uncontrolled(self, source):
        # Garbage either parses (rare) or raises GrelError -- never
        # anything else.
        try:
            GrelExpression(source)
        except GrelError:
            pass


class TestBaranTransformProperties:
    @given(plain_text, plain_text)
    @settings(max_examples=100, deadline=None)
    def test_learned_transforms_reproduce_their_example(self, error, correction):
        assume(error and correction)
        for name, fn in _learn_transformations(error, correction):
            try:
                out = fn(error)
            except Exception as exc:  # noqa: BLE001
                pytest.fail(f"transform {name} raised {exc}")
            # Every learned transform must map its own example correctly
            # (or abstain with None).
            assert out is None or out == correction or name.startswith("sub_")

    @given(plain_text, plain_text)
    @settings(max_examples=100, deadline=None)
    def test_edit_distance_agrees_with_similarity_module(self, a, b):
        from repro.detectors.similarity import levenshtein

        assert edit_distance(a, b, cutoff=100) == levenshtein(a, b)


class TestProfilerProperties:
    @given(
        st.lists(
            st.one_of(
                st.none(),
                st.floats(-1e6, 1e6, allow_nan=False),
                st.text(alphabet="abc019", max_size=6),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_profile_invariants(self, values):
        schema = Schema.from_pairs([("c", CATEGORICAL)])
        table = Table(schema, {"c": values})
        profile = profile_column(table, "c")
        assert profile.n_values == len(values)
        assert 0.0 <= profile.null_ratio <= 1.0
        assert 0.0 <= profile.distinctness <= 1.0
        assert profile.n_distinct <= profile.n_values - profile.n_missing
        assert profile.entropy >= 0.0
        assert 0.0 <= profile.shape_conformity <= 1.0


class TestEnsembleMonotonicity:
    @given(st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_min_k_monotone_in_k(self, seed):
        from repro.context import CleaningContext
        from repro.detectors import MinKDetector
        from repro.errors import MissingValueInjector, OutlierInjector, CompositeInjector

        rng = np.random.default_rng(seed)
        schema = Schema.from_pairs(
            [("a", NUMERICAL), ("b", NUMERICAL), ("c", CATEGORICAL)]
        )
        clean = Table(
            schema,
            {
                "a": rng.normal(size=40).tolist(),
                "b": rng.normal(size=40).tolist(),
                "c": [f"v{int(rng.integers(3))}" for _ in range(40)],
            },
        )
        injector = CompositeInjector(
            [MissingValueInjector(), OutlierInjector(degree=5.0)]
        )
        result = injector.inject(clean, 0.1, rng)
        context = CleaningContext(dirty=result.dirty, seed=seed)
        previous = None
        for k in (1, 2, 3):
            cells = MinKDetector(k=k, trusted=()).detect(context).cells
            if previous is not None:
                assert cells <= previous
            previous = cells
