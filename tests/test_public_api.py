"""Public-API quality gate: exports resolve and everything is documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.benchmark",
    "repro.constraints",
    "repro.datagen",
    "repro.dataset",
    "repro.detectors",
    "repro.errors",
    "repro.metrics",
    "repro.ml",
    "repro.observability",
    "repro.profiling",
    "repro.repair",
    "repro.reporting",
    "repro.repository",
    "repro.tuning",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__, f"{package_name} lacks a module docstring"
    exported = getattr(package, "__all__", [])
    assert exported, f"{package_name} exports nothing"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_classes_and_functions_documented(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in getattr(package, "__all__", []):
        obj = getattr(package, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(name)
    assert not undocumented, (
        f"{package_name} exports undocumented items: {undocumented}"
    )


def test_detector_registry_names_are_stable():
    from repro.detectors import detector_registry

    assert set(detector_registry()) == {
        "KATARA", "NADEEF", "FAHES", "HoloClean", "dBoost", "OpenRefine",
        "IF", "SD", "IQR", "MVD", "KeyCollision", "ZeroER", "CleanLab",
        "Min-K", "MaxEntropy", "Meta", "RAHA", "ED2", "Picket",
    }


def test_repair_registry_names_are_stable():
    from repro.repair import repair_registry

    assert set(repair_registry()) == {
        "GT", "Delete", "Impute-Mean", "Impute-Median", "Impute-Mode",
        "MISS-Mix", "DataWig-Mix", "MISS-Sep", "MISS-DataWig", "DT-MISS",
        "Bayes-MISS", "KNN-MISS", "HoloClean", "OpenRefine", "BARAN",
        "CleanLab", "ActiveClean", "BoostClean", "CPClean",
    }
