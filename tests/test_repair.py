"""Tests for all 19 repair methods."""

import numpy as np
import pytest

from repro.constraints import FunctionalDependency
from repro.context import CleaningContext
from repro.dataset import CATEGORICAL, NUMERICAL, Schema, Table
from repro.dataset.table import is_missing, values_equal
from repro.errors import (
    CompositeInjector,
    InconsistencyInjector,
    MislabelInjector,
    MissingValueInjector,
    OutlierInjector,
)
from repro.metrics import repair_rmse, repair_scores_categorical
from repro.repair import (
    ActiveCleanRepair,
    BaranRepair,
    BayesMissRepair,
    BoostCleanRepair,
    CleanLabRepair,
    CPCleanRepair,
    DataWigMixRepair,
    DeleteRepair,
    DTMissRepair,
    GroundTruthRepair,
    HoloCleanRepair,
    KNNMissRepair,
    MeanModeImputeRepair,
    MedianModeImputeRepair,
    MissDataWigRepair,
    MissForestMixRepair,
    MissForestSepRepair,
    ModeModeImputeRepair,
    OpenRefineRepair,
    all_repair_methods,
    repair_registry,
)
from repro.repair.base import blank_detected_cells

RNG = lambda s=0: np.random.default_rng(s)


def correlated_table(n=150, seed=0):
    """Numeric columns correlated with city so imputers have signal."""
    rng = np.random.default_rng(seed)
    schema = Schema.from_pairs(
        [
            ("amount", NUMERICAL),
            ("size", NUMERICAL),
            ("city", CATEGORICAL),
            ("country", CATEGORICAL),
            ("label", CATEGORICAL),
        ]
    )
    cities = ["berlin", "munich", "paris", "lyon"]
    country_of = {
        "berlin": "germany", "munich": "germany",
        "paris": "france", "lyon": "france",
    }
    base_amount = {"berlin": 50.0, "munich": 80.0, "paris": 110.0, "lyon": 140.0}
    chosen = [cities[int(rng.integers(4))] for _ in range(n)]
    amounts = [base_amount[c] + rng.normal(0, 3) for c in chosen]
    return Table(
        schema,
        {
            "amount": amounts,
            "size": [a * 2.0 + rng.normal(0, 1) for a in amounts],
            "city": chosen,
            "country": [country_of[c] for c in chosen],
            "label": ["big" if a > 95 else "small" for a in amounts],
        },
    )


def dirty_context(seed=0, rate=0.08):
    clean = correlated_table(seed=seed)
    # Attribute errors only: corrupting the label column would add a third
    # "missing" class, which (per Section 6.5) breaks BoostClean/CPClean --
    # that failure mode gets its own dedicated tests.
    feature_columns = ["amount", "size", "city", "country"]
    injector = CompositeInjector(
        [
            MissingValueInjector(columns=feature_columns),
            OutlierInjector(columns=feature_columns, degree=5.0),
        ]
    )
    result = injector.inject(clean, rate, RNG(seed + 1))
    ctx = CleaningContext(
        dirty=result.dirty,
        clean=clean,
        fds=[FunctionalDependency(("city",), "country")],
        label_column="label",
        task="classification",
        seed=seed,
    )
    return ctx, result


class TestGroundTruthRepair:
    def test_restores_detected_cells(self):
        ctx, result = dirty_context()
        repaired = GroundTruthRepair().repair(ctx, result.error_cells).repaired
        assert repaired.diff_cells(ctx.clean) == set()

    def test_partial_detection_partial_repair(self):
        ctx, result = dirty_context(seed=1)
        some = set(list(result.error_cells)[: len(result.error_cells) // 2])
        repaired = GroundTruthRepair().repair(ctx, some).repaired
        remaining = repaired.diff_cells(ctx.clean)
        assert remaining == result.error_cells - some

    def test_needs_clean(self):
        ctx, result = dirty_context(seed=2)
        ctx.clean = None
        with pytest.raises(RuntimeError):
            GroundTruthRepair().repair(ctx, result.error_cells)


class TestDeleteRepair:
    def test_removes_dirty_rows(self):
        ctx, result = dirty_context(seed=3)
        repaired = DeleteRepair().repair(ctx, result.error_cells).repaired
        dirty_rows = {r for r, _ in result.error_cells}
        assert repaired.n_rows == ctx.dirty.n_rows - len(dirty_rows)

    def test_no_detections_no_change(self):
        ctx, _ = dirty_context(seed=4)
        repaired = DeleteRepair().repair(ctx, set()).repaired
        assert repaired.n_rows == ctx.dirty.n_rows


class TestStatImputers:
    @pytest.mark.parametrize(
        "method",
        [MeanModeImputeRepair(), MedianModeImputeRepair(), ModeModeImputeRepair()],
        ids=lambda m: m.name,
    )
    def test_fills_all_detected_cells(self, method):
        ctx, result = dirty_context(seed=5)
        repaired = method.repair(ctx, result.error_cells).repaired
        for row, column in result.error_cells:
            assert not is_missing(repaired.get_cell(row, column))

    def test_mean_beats_dirty_rmse(self):
        ctx, result = dirty_context(seed=6)
        repaired = MeanModeImputeRepair().repair(ctx, result.error_cells).repaired
        assert repair_rmse(repaired, ctx.clean) < repair_rmse(ctx.dirty, ctx.clean)

    def test_stats_exclude_detected_cells(self):
        schema = Schema.from_pairs([("x", NUMERICAL)])
        table = Table(schema, {"x": [1.0, 1.0, 1.0, 1000.0]})
        ctx = CleaningContext(dirty=table)
        repaired = MeanModeImputeRepair().repair(ctx, {(3, "x")}).repaired
        assert repaired.get_cell(3, "x") == pytest.approx(1.0)


class TestMLImputers:
    @pytest.mark.parametrize(
        "method",
        [
            MissForestMixRepair(),
            MissForestSepRepair(),
            DataWigMixRepair(),
            MissDataWigRepair(),
            DTMissRepair(),
            BayesMissRepair(),
            KNNMissRepair(),
        ],
        ids=lambda m: m.name,
    )
    def test_beats_dirty_rmse(self, method):
        ctx, result = dirty_context(seed=7)
        repaired = method.repair(ctx, result.error_cells).repaired
        assert repair_rmse(repaired, ctx.clean) < repair_rmse(ctx.dirty, ctx.clean)

    def test_missforest_beats_mean_on_correlated_data(self):
        ctx, result = dirty_context(seed=8)
        numeric_cells = {
            c for c in result.error_cells
            if ctx.dirty.schema.kind_of(c[1]) == "numerical"
        }
        forest = MissForestMixRepair().repair(ctx, numeric_cells).repaired
        mean = MeanModeImputeRepair().repair(ctx, numeric_cells).repaired
        assert repair_rmse(forest, ctx.clean) < repair_rmse(mean, ctx.clean)

    def test_categorical_holes_filled(self):
        ctx, result = dirty_context(seed=9)
        repaired = MissForestMixRepair().repair(ctx, result.error_cells).repaired
        for row, column in result.error_cells:
            assert not is_missing(repaired.get_cell(row, column))

    def test_mode_validation(self):
        from repro.repair import MLImputeRepair

        with pytest.raises(ValueError):
            MLImputeRepair(lambda: None, lambda: None, mode="joint")
        with pytest.raises(ValueError):
            MLImputeRepair(lambda: None, lambda: None, n_iterations=0)


class TestHoloCleanRepair:
    def test_fd_violation_repaired_to_majority(self):
        clean = correlated_table(seed=10)
        dirty = clean.copy()
        dirty.set_cell(0, "country", "spain")
        ctx = CleaningContext(
            dirty=dirty, fds=[FunctionalDependency(("city",), "country")]
        )
        repaired = HoloCleanRepair().repair(ctx, {(0, "country")}).repaired
        assert values_equal(
            repaired.get_cell(0, "country"), clean.get_cell(0, "country")
        )

    def test_scores_on_categorical_attributes(self):
        ctx, result = dirty_context(seed=11)
        repaired = HoloCleanRepair().repair(ctx, result.error_cells).repaired
        scores = repair_scores_categorical(
            ctx.dirty, repaired, ctx.clean, result.error_cells
        )
        assert scores.f1 > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            HoloCleanRepair(max_candidates=1)
        with pytest.raises(ValueError):
            HoloCleanRepair(max_training_cells=5)

    def test_weight_learning_not_worse_than_fixed(self):
        from repro.datagen import generate

        dataset = generate("Beers", n_rows=300, seed=3)
        ctx = dataset.context(seed=3)
        fixed = HoloCleanRepair(learn_weights=False)
        learned = HoloCleanRepair(learn_weights=True)
        f1 = {}
        for name, method in (("fixed", fixed), ("learned", learned)):
            repaired = method.repair(ctx, dataset.error_cells).repaired
            f1[name] = repair_scores_categorical(
                dataset.dirty, repaired, dataset.clean, dataset.error_cells
            ).f1
        # The holdout gate guarantees learned >= fixed up to sampling noise.
        assert f1["learned"] >= f1["fixed"] - 0.05
        assert learned.learned_weights_ is not None

    def test_weight_learning_fallback_on_tiny_data(self):
        schema = Schema.from_pairs([("c", CATEGORICAL)])
        table = Table(schema, {"c": ["a", "b", "a"]})
        ctx = CleaningContext(dirty=table)
        method = HoloCleanRepair(learn_weights=True)
        method.repair(ctx, {(0, "c")})
        assert np.array_equal(
            method.learned_weights_, HoloCleanRepair._FALLBACK_WEIGHTS
        )


class TestOpenRefineRepair:
    def test_merges_format_variants(self):
        clean = correlated_table(seed=12)
        result = InconsistencyInjector(columns=["city"]).inject(
            clean, 0.1, RNG(13)
        )
        ctx = CleaningContext(dirty=result.dirty, clean=clean)
        repaired = OpenRefineRepair().repair(ctx, result.error_cells).repaired
        scores = repair_scores_categorical(
            result.dirty, repaired, clean, result.error_cells
        )
        assert scores.precision > 0.8
        assert scores.recall > 0.4


class TestBaran:
    def test_repairs_mixed_errors(self):
        ctx, result = dirty_context(seed=14)
        repaired = BaranRepair(label_budget=15).repair(
            ctx, result.error_cells
        ).repaired
        scores = repair_scores_categorical(
            ctx.dirty, repaired, ctx.clean, result.error_cells
        )
        assert scores.f1 > 0.5
        assert repair_rmse(repaired, ctx.clean) < repair_rmse(ctx.dirty, ctx.clean)

    def test_value_model_transfers_learned_transformations(self):
        clean = correlated_table(seed=15)
        clean.set_cell(0, "city", "berlin")
        clean.set_cell(0, "country", "germany")
        clean.set_cell(1, "city", "munich")
        clean.set_cell(1, "country", "germany")
        dirty = clean.copy()
        dirty.set_cell(0, "city", "BERLIN")
        dirty.set_cell(1, "city", "MUNICH")
        ctx = CleaningContext(dirty=dirty, clean=clean, seed=0)
        # Budget 1: one cell is oracle-labeled; the other must be fixed by
        # the lowercase transformation learned from that single example
        # (seeded redundantly via the revision corpus).
        repaired = BaranRepair(
            label_budget=1, revision_corpus=[("PARIS", "paris")]
        ).repair(ctx, {(0, "city"), (1, "city")}).repaired
        assert repaired.get_cell(0, "city") == "berlin"
        assert repaired.get_cell(1, "city") == "munich"

    def test_learn_transformations_unit(self):
        from repro.repair.baran import _learn_transformations

        lower = dict(_learn_transformations("ABC", "abc"))
        assert "lowercase" in lower
        assert lower["lowercase"]("XYZ") == "xyz"
        drop = _learn_transformations("berlinn", "berlin")
        assert any(fn("munichh") == "munich" for _, fn in drop if fn("munichh"))
        sub = dict(_learn_transformations("b3rlin", "berlin"))
        assert any(
            fn("munich3") == "muniche"
            for fn in sub.values()
            if fn("munich3")
        )

    def test_needs_oracle(self):
        ctx, result = dirty_context(seed=16)
        ctx.clean = None
        with pytest.raises(RuntimeError):
            BaranRepair().repair(ctx, result.error_cells)

    def test_validation(self):
        with pytest.raises(ValueError):
            BaranRepair(label_budget=0)


class TestCleanLabRepair:
    def test_relabels_flagged_cells(self):
        clean = correlated_table(seed=17)
        result = MislabelInjector("label").inject(clean, 0.1, RNG(18))
        ctx = CleaningContext(
            dirty=result.dirty, clean=clean, label_column="label"
        )
        repaired = CleanLabRepair().repair(ctx, result.error_cells).repaired
        scores = repair_scores_categorical(
            result.dirty, repaired, clean, result.error_cells,
            columns=["label"],
        )
        assert scores.f1 > 0.8

    def test_no_label_column_noop(self):
        ctx, result = dirty_context(seed=19)
        ctx.label_column = None
        repaired = CleanLabRepair().repair(ctx, result.error_cells).repaired
        assert repaired == ctx.dirty


class TestMLOriented:
    def test_activeclean_beats_dirty_model(self):
        ctx, result = dirty_context(seed=20, rate=0.12)
        fitted = ActiveCleanRepair(n_iterations=4).fit(ctx, result.error_cells)
        f1_clean_test = fitted.model.f1(ctx.clean)
        assert f1_clean_test > 0.7
        assert fitted.metadata["records_cleaned"] > 0

    def test_activeclean_fails_without_clean_partition(self):
        ctx, _ = dirty_context(seed=21)
        all_label_cells = {(i, "label") for i in range(ctx.dirty.n_rows)}
        with pytest.raises(RuntimeError, match="partition"):
            ActiveCleanRepair().fit(ctx, all_label_cells)

    def test_boostclean_learns(self):
        ctx, result = dirty_context(seed=22)
        fitted = BoostCleanRepair(n_rounds=3).fit(ctx, result.error_cells)
        assert fitted.model.f1(ctx.clean) > 0.7
        assert fitted.metadata["learners"]

    def test_boostclean_rejects_multiclass(self):
        clean = correlated_table(seed=23)
        multi = clean.copy()
        for i in range(0, multi.n_rows, 3):
            multi.set_cell(i, "label", "medium")
        ctx = CleaningContext(dirty=multi, label_column="label")
        with pytest.raises(ValueError, match="binary"):
            BoostCleanRepair().fit(ctx, set())

    def test_cpclean_cleans_until_certain(self):
        ctx, result = dirty_context(seed=24)
        fitted = CPCleanRepair(max_cleaned=40).fit(ctx, result.error_cells)
        history = fitted.metadata["certainty_history"]
        assert history[-1] >= history[0]
        assert fitted.model.f1(ctx.clean) > 0.6

    def test_cpclean_rejects_multiclass(self):
        clean = correlated_table(seed=25)
        multi = clean.copy()
        for i in range(0, multi.n_rows, 3):
            multi.set_cell(i, "label", "medium")
        ctx = CleaningContext(dirty=multi, clean=multi, label_column="label")
        with pytest.raises(ValueError, match="binary"):
            CPCleanRepair().fit(ctx, set())

    def test_validation(self):
        with pytest.raises(ValueError):
            ActiveCleanRepair(n_iterations=0)
        with pytest.raises(ValueError):
            BoostCleanRepair(n_rounds=0)
        with pytest.raises(ValueError):
            CPCleanRepair(n_neighbors=0)


class TestRegistryAndHelpers:
    def test_nineteen_methods(self):
        methods = all_repair_methods()
        assert len(methods) == 19
        names = [m.name for m in methods]
        assert len(set(names)) == 19

    def test_categories(self):
        from repro.repair import GENERIC, ML_ORIENTED

        registry = repair_registry()
        assert registry["GT"].category == GENERIC
        assert registry["ActiveClean"].category == ML_ORIENTED
        ml_count = sum(
            1 for m in registry.values() if m.category == ML_ORIENTED
        )
        assert ml_count == 3

    def test_blank_detected_cells(self):
        ctx, result = dirty_context(seed=26)
        blanked = blank_detected_cells(ctx.dirty, result.error_cells)
        for row, column in result.error_cells:
            assert is_missing(blanked.get_cell(row, column))
        # Out-of-range detections are ignored, not fatal.
        blank_detected_cells(ctx.dirty, {(10**6, "amount"), (0, "ghost")})
