"""Tests for the text renderers."""

import math

import pytest

from repro.reporting import (
    display_width,
    render_bars,
    render_matrix,
    render_runtime_panel,
    render_series,
    render_table,
)


class TestRenderTable:
    def test_alignment_and_title(self):
        out = render_table(
            ["name", "f1"], [["RAHA", 0.98], ["SD", 0.4]], title="Fig 2a"
        )
        lines = out.splitlines()
        assert lines[0] == "Fig 2a"
        assert "RAHA" in lines[3]
        assert "0.980" in out

    def test_nan_and_none(self):
        out = render_table(["a"], [[float("nan")], [None]])
        assert "nan" in out
        assert "-" in out

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_precision(self):
        out = render_table(["x"], [[1.23456]], precision=1)
        assert "1.2" in out


class TestRenderBars:
    def test_bar_lengths_scale(self):
        out = render_bars({"big": 10.0, "small": 1.0}, width=20)
        big_line = next(l for l in out.splitlines() if l.startswith("big"))
        small_line = next(l for l in out.splitlines() if l.startswith("small"))
        assert big_line.count("#") == 20
        assert small_line.count("#") == 2

    def test_empty(self):
        assert render_bars({}, title="t") == "t"


class TestRenderMatrix:
    def test_square(self):
        out = render_matrix(["a", "b"], [[1.0, 0.5], [0.5, 1.0]])
        assert "1.00" in out and "0.50" in out


class TestRenderSeries:
    def test_merged_x_axis(self):
        out = render_series(
            {"RAHA": [(0.1, 0.5), (0.2, 0.7)], "SD": [(0.2, 0.3)]},
            x_label="error_rate",
            y_label="f1",
        )
        lines = out.splitlines()
        assert lines[0].startswith("error_rate")
        # x=0.1 row has a '-' for SD which has no point there.
        row_01 = next(l for l in lines if l.startswith("0.100"))
        assert "-" in row_01

    def test_empty_series_mapping(self):
        out = render_series({}, x_label="x", y_label="y", title="empty")
        lines = out.splitlines()
        assert lines[0] == "empty"
        assert lines[1].startswith("x")
        assert len(lines) == 3  # title + header + rule, no data rows

    def test_series_with_no_points(self):
        out = render_series(
            {"RAHA": []}, x_label="x", y_label="f1"
        )
        assert "RAHA (f1)" in out.splitlines()[0]
        assert len(out.splitlines()) == 2  # header + rule only

    def test_nan_y_values_render_as_nan_cells(self):
        out = render_series(
            {"SD": [(0.1, float("nan")), (0.2, 0.5)]},
            x_label="x", y_label="f1",
        )
        row = next(l for l in out.splitlines() if l.startswith("0.100"))
        assert "nan" in row


class TestDisplayWidth:
    def test_ascii(self):
        assert display_width("abc") == 3

    def test_east_asian_wide_counts_two_columns(self):
        assert display_width("数据") == 4

    def test_combining_marks_count_zero(self):
        assert display_width("é") == 1  # e + combining acute

    def test_mixed_width_labels_align(self):
        out = render_table(
            ["name", "f1"], [["数据清洗", 0.9], ["SD", 0.4]]
        )
        lines = out.splitlines()
        # The value cells must start at the same terminal column, i.e.
        # the padded label fields occupy equal display width.
        wide_row = next(l for l in lines if "数据清洗" in l)
        ascii_row = next(l for l in lines if l.startswith("SD"))
        assert display_width(wide_row[: wide_row.index("0.900")]) == (
            display_width(ascii_row[: ascii_row.index("0.400")])
        )

    def test_mixed_width_bar_labels_align(self):
        out = render_bars({"数据": 2.0, "SD": 1.0}, width=10)
        lines = out.splitlines()
        starts = {display_width(l.split("#")[0]) for l in lines}
        assert len(starts) == 1  # bars start at the same display column


class TestRenderRuntimePanel:
    def test_sorted_slowest_first_with_total(self):
        out = render_runtime_panel(
            {"fast": 0.5, "slow": 2.0}, title="runtime"
        )
        lines = out.splitlines()
        assert lines[0] == "runtime"
        assert lines[1].startswith("slow")
        assert lines[2].startswith("fast")
        assert lines[-1].startswith("total") and "2.500" in lines[-1]

    def test_failures_are_marked_not_hidden(self):
        out = render_runtime_panel(
            {"crashy": 1.5, "ok": 0.2}, failures={"crashy": "bug"}
        )
        assert "crashy !bug" in out
        assert "1.500" in out  # the honest runtime stays visible

    def test_empty_panel(self):
        out = render_runtime_panel({}, title="runtime")
        assert "runtime" in out
        assert "no units finalized" in out
