"""Tests for the text renderers."""

import math

import pytest

from repro.reporting import render_bars, render_matrix, render_series, render_table


class TestRenderTable:
    def test_alignment_and_title(self):
        out = render_table(
            ["name", "f1"], [["RAHA", 0.98], ["SD", 0.4]], title="Fig 2a"
        )
        lines = out.splitlines()
        assert lines[0] == "Fig 2a"
        assert "RAHA" in lines[3]
        assert "0.980" in out

    def test_nan_and_none(self):
        out = render_table(["a"], [[float("nan")], [None]])
        assert "nan" in out
        assert "-" in out

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_precision(self):
        out = render_table(["x"], [[1.23456]], precision=1)
        assert "1.2" in out


class TestRenderBars:
    def test_bar_lengths_scale(self):
        out = render_bars({"big": 10.0, "small": 1.0}, width=20)
        big_line = next(l for l in out.splitlines() if l.startswith("big"))
        small_line = next(l for l in out.splitlines() if l.startswith("small"))
        assert big_line.count("#") == 20
        assert small_line.count("#") == 2

    def test_empty(self):
        assert render_bars({}, title="t") == "t"


class TestRenderMatrix:
    def test_square(self):
        out = render_matrix(["a", "b"], [[1.0, 0.5], [0.5, 1.0]])
        assert "1.00" in out and "0.50" in out


class TestRenderSeries:
    def test_merged_x_axis(self):
        out = render_series(
            {"RAHA": [(0.1, 0.5), (0.2, 0.7)], "SD": [(0.2, 0.3)]},
            x_label="error_rate",
            y_label="f1",
        )
        lines = out.splitlines()
        assert lines[0].startswith("error_rate")
        # x=0.1 row has a '-' for SD which has no point there.
        row_01 = next(l for l in lines if l.startswith("0.100"))
        assert "-" in row_01
