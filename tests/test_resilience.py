"""Tier-1 unit tests for the resilience layer (guards, taxonomy,
checkpoints).  The full fault-injection pipeline lives in the tier-2
chaos suite (test_chaos.py, `pytest -m chaos`)."""

import json
import math

import numpy as np
import pytest

from repro.benchmark import evaluate_scenarios, run_detection_suite
from repro.datagen import generate
from repro.detectors import MVDetector
from repro.resilience import (
    BUG,
    CAPABILITY,
    DATA,
    TRANSIENT,
    CircuitBreaker,
    CorruptOutputError,
    CrashingDetector,
    Deadline,
    DeadlineExceeded,
    FailureRecord,
    RetryPolicy,
    TransientError,
    classify_exception,
    guarded_call,
    run_id_for,
    unit_key,
)
from repro.repository import CheckpointStore
from repro.repository.store import nan_guard
from repro.resilience.checkpoint import SuiteCheckpoint


class FakeClock:
    """Monotonic fake clock advancing a fixed tick per call."""

    def __init__(self, tick: float = 0.0):
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        self.now += self.tick
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_unlimited_never_expires(self):
        deadline = Deadline.unlimited()
        assert not deadline.expired()
        assert deadline.remaining() == float("inf")
        deadline.check()  # no raise

    def test_expires_on_fake_clock(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        deadline.check()
        clock.advance(4.9)
        assert not deadline.expired()
        clock.advance(0.2)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded) as info:
            deadline.check("UnitTest.detect")
        assert "UnitTest.detect" in str(info.value)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            Deadline(0.0)

    def test_restarted_gets_fresh_budget(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        assert deadline.expired()
        assert not deadline.restarted().expired()


class TestTaxonomy:
    def test_classification(self):
        assert classify_exception(TransientError("x")) == TRANSIENT
        assert classify_exception(ConnectionError()) == TRANSIENT
        assert classify_exception(MemoryError()) == CAPABILITY
        assert classify_exception(DeadlineExceeded("x")) == CAPABILITY
        assert classify_exception(CorruptOutputError("x")) == DATA
        assert classify_exception(ValueError("x")) == DATA
        assert classify_exception(np.linalg.LinAlgError("x")) == DATA
        assert classify_exception(RuntimeError("x")) == BUG
        assert classify_exception(AttributeError("x")) == BUG

    def test_record_round_trip(self):
        record = FailureRecord.from_exception(
            MemoryError("boom"), "Picket", "detection",
            elapsed_seconds=1.25, retries=2, dataset="Beers",
        )
        assert record.category == CAPABILITY
        assert record.describe() == "MemoryError: boom"
        clone = FailureRecord.from_json(record.to_json())
        assert clone == record

    def test_invalid_category_rejected(self):
        with pytest.raises(ValueError):
            FailureRecord("m", "detection", "weird", "E", "msg")

    def test_quarantine_skip_record(self):
        record = FailureRecord.quarantine_skip(
            "RAHA", "detection", "quarantined after 3 consecutive failures"
        )
        assert record.quarantined
        assert record.category == CAPABILITY
        assert "quarantined" in record.describe()


class TestRetryPolicy:
    def test_deterministic_jitter(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, seed=7)
        first = list(policy.delays("detection:RAHA"))
        second = list(policy.delays("detection:RAHA"))
        assert first == second
        assert len(first) == 3
        assert all(0 < d <= 0.4 for d in first)
        other = list(policy.delays("detection:ED2"))
        assert first != other  # jitter depends on the key

    def test_only_transient_retryable(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(TransientError("x"), 1)
        assert not policy.should_retry(MemoryError(), 1)
        assert not policy.should_retry(TransientError("x"), 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=2.0)


class TestCircuitBreaker:
    def test_trips_after_k_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3)
        for _ in range(2):
            breaker.record_failure("RAHA", "MemoryError: boom")
        assert not breaker.is_quarantined("RAHA")
        breaker.record_failure("RAHA", "MemoryError: boom")
        assert breaker.is_quarantined("RAHA")
        assert "3 consecutive failures" in breaker.reason("RAHA")
        assert "MemoryError" in breaker.reason("RAHA")

    def test_success_resets_counter(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure("ED2")
        breaker.record_success("ED2")
        breaker.record_failure("ED2")
        assert not breaker.is_quarantined("ED2")

    def test_quarantined_mapping(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure("Picket", "boom")
        assert set(breaker.quarantined) == {"Picket"}


class TestGuardedCall:
    def test_success_path(self):
        result = guarded_call(lambda: 42, method="m", stage="detection")
        assert result.ok and result.value == 42 and result.retries == 0

    def test_failure_produces_categorized_record(self):
        def boom():
            raise MemoryError("out of memory")

        result = guarded_call(boom, method="Picket", stage="detection")
        assert not result.ok
        assert result.failure.category == CAPABILITY
        assert result.failure.error_type == "MemoryError"

    def test_transient_retries_then_succeeds(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientError("flake")
            return "ok"

        slept = []
        result = guarded_call(
            flaky, method="m", stage="detection",
            retry=RetryPolicy(max_attempts=3, base_delay=0.01),
            sleep=slept.append,
        )
        assert result.ok and result.value == "ok"
        assert result.retries == 2
        assert len(slept) == 2

    def test_nontransient_never_retried(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("bad data")

        result = guarded_call(
            broken, method="m", stage="repair",
            retry=RetryPolicy(max_attempts=5),
        )
        assert calls["n"] == 1
        assert result.failure.category == DATA

    def test_quarantined_method_skipped_without_calling(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure("RAHA", "boom")

        def must_not_run():
            raise AssertionError("should have been quarantined")

        result = guarded_call(
            must_not_run, method="RAHA", stage="detection", breaker=breaker
        )
        assert result.failure.quarantined
        assert "quarantined" in result.failure.message

    def test_breaker_records_outcomes(self):
        breaker = CircuitBreaker(threshold=2)
        for _ in range(2):
            guarded_call(
                lambda: (_ for _ in ()).throw(MemoryError("x")),
                method="Picket", stage="detection", breaker=breaker,
            )
        assert breaker.is_quarantined("Picket")

    def test_expired_deadline_fails_before_calling(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)

        def must_not_run():
            raise AssertionError("deadline already spent")

        result = guarded_call(
            must_not_run, method="m", stage="detection", deadline=deadline
        )
        assert result.failure.error_type == "DeadlineExceeded"
        assert result.failure.category == CAPABILITY

    def test_keyboard_interrupt_propagates(self):
        def interrupted():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            guarded_call(interrupted, method="m", stage="detection")

    def test_elapsed_time_captured_on_failure(self):
        clock = FakeClock()

        def slow_crash():
            clock.advance(3.0)
            raise MemoryError("boom")

        result = guarded_call(
            slow_crash, method="m", stage="detection", clock=clock
        )
        assert result.failure.elapsed_seconds == pytest.approx(3.0)


class TestCheckpointStore:
    def test_round_trip_and_isolation(self, tmp_path):
        path = str(tmp_path / "ckpt.sqlite")
        with CheckpointStore(path) as store:
            store.put("run-a", "detection/D/x", {"value": 1.5})
            store.put("run-b", "detection/D/x", {"value": 9.9})
            assert store.get("run-a", "detection/D/x") == {"value": 1.5}
            assert store.get("run-a", "missing") is None
            assert store.units("run-a") == ["detection/D/x"]
            store.clear_run("run-a")
            assert store.count("run-a") == 0
            assert store.count("run-b") == 1

    def test_nan_payloads_stored_as_standard_json(self, tmp_path):
        # NaN scores are written as null (standard JSON, external tools
        # can parse the rows); consumers restore them via nan_guard.
        path = str(tmp_path / "ckpt.sqlite")
        with CheckpointStore(path) as store:
            store.put("r", "u", {"value": math.nan, "nested": [math.nan, 2]})
            store.commit()
            raw = store._connection.execute(
                "SELECT payload_json FROM checkpoints "
                "WHERE run_id = 'r' AND unit = 'u'"
            ).fetchone()[0]
            assert "NaN" not in raw
            json.loads(raw)  # strict JSON parses
            loaded = store.get("r", "u")
            assert loaded["value"] is None
            assert loaded["nested"] == [None, 2]
            assert math.isnan(nan_guard(loaded["value"]))

    def test_legacy_nan_token_rows_still_load(self, tmp_path):
        # Stores written before the hygiene change contain the literal
        # NaN token; Python's json reader accepts it, so old checkpoints
        # resume without migration.
        path = str(tmp_path / "ckpt.sqlite")
        with CheckpointStore(path) as store:
            store._connection.execute(
                "INSERT INTO checkpoints VALUES ('r', 'legacy', ?)",
                ('{"value": NaN}',),
            )
            store.commit()
            loaded = store.get("r", "legacy")
            assert math.isnan(loaded["value"])
            assert math.isnan(nan_guard(loaded["value"]))

    def test_suite_checkpoint_open_resume_semantics(self, tmp_path):
        path = str(tmp_path / "ckpt.sqlite")
        with SuiteCheckpoint.open(path, "r1") as ckpt:
            ckpt.put("u1", {"x": 1})
        with SuiteCheckpoint.open(path, "r1", resume=True) as ckpt:
            assert ckpt.get("u1") == {"x": 1}
        with SuiteCheckpoint.open(path, "r1", resume=False) as ckpt:
            assert ckpt.get("u1") is None

    def test_unit_key_and_run_id(self):
        key = unit_key("repair", "Beers", detector="MVD", repair="GT", seed=3)
        assert key == "repair/Beers/MVD/GT///3"
        with pytest.raises(ValueError):
            unit_key("repair", "data/set")
        assert run_id_for("a", 1) == run_id_for("a", 1)
        assert run_id_for("a", 1) != run_id_for("a", 2)

    def test_run_id_hashes_structure_not_str(self):
        # str(part)-based hashing collided a list with its repr string,
        # and "1" with 1 -- distinct configs must get distinct run ids.
        assert run_id_for(["a", "b"]) != run_id_for("['a', 'b']")
        assert run_id_for("1") != run_id_for(1)
        assert run_id_for("a", "b") != run_id_for("a/b")
        assert run_id_for(["a", ["b"]]) != run_id_for(["a", "b"])

    def test_run_id_ignores_dict_insertion_order(self):
        first = run_id_for({"dataset": "Beers", "seed": 1})
        second = run_id_for({"seed": 1, "dataset": "Beers"})
        assert first == second
        assert first != run_id_for({"dataset": "Beers", "seed": 2})

    def test_run_id_handles_sets_and_objects(self):
        assert run_id_for({"x", "y"}) == run_id_for({"y", "x"})

        class Config:
            def __repr__(self):
                return "cfg"

        # Equal reprs of different types stay distinct.
        assert run_id_for(Config()) != run_id_for("cfg")


class TestRunnerFailureBookkeeping:
    def test_failed_detection_reports_elapsed_runtime(self):
        dataset = generate("SmartFactory", n_rows=100, seed=1)
        clock = FakeClock()
        crasher = CrashingDetector(
            MemoryError, "boom", spend_seconds=2.0,
            sleep=lambda s: clock.advance(s),
        )
        runs = run_detection_suite(
            dataset, [crasher, MVDetector()], clock=clock
        )
        by_name = {r.detector: r for r in runs}
        failed = by_name["Crashing"]
        assert failed.failed
        assert failed.failure_record.category == CAPABILITY
        # The crash burned 2 fake seconds -- runtime must reflect it
        # instead of the old 0.0 under-report.
        assert failed.result.runtime_seconds >= 2.0
        assert not by_name["MVD"].failed

    def test_detection_checkpoint_skips_completed_work(self, tmp_path):
        dataset = generate("SmartFactory", n_rows=100, seed=1)
        ckpt = SuiteCheckpoint.open(str(tmp_path / "c.sqlite"), "r")
        first = run_detection_suite(dataset, [MVDetector()], checkpoint=ckpt)

        class MustNotRun(MVDetector):
            def _detect(self, context):
                raise AssertionError("checkpoint should have skipped this")

        second = run_detection_suite(dataset, [MustNotRun()], checkpoint=ckpt)
        assert second[0].scores == first[0].scores
        assert set(second[0].result.cells) == set(first[0].result.cells)
        ckpt.close()

    def test_scenario_failures_are_recorded_not_swallowed(self, monkeypatch):
        dataset = generate("SmartFactory", n_rows=120, seed=0)

        import repro.benchmark.runner as runner_module

        real = runner_module.run_scenario
        calls = {"n": 0}

        def sometimes_broken(*args, **kwargs):
            calls["n"] += 1
            if kwargs.get("seed") == 1:
                raise ValueError("injected scenario crash")
            return real(*args, **kwargs)

        monkeypatch.setattr(runner_module, "run_scenario", sometimes_broken)
        evaluation = runner_module.evaluate_scenarios(
            dataset, dataset.dirty, "dirty", "DT",
            scenario_names=("S1",), n_seeds=3, sample_rows=60,
        )
        scores = evaluation.scores["S1"]
        assert math.isnan(scores[1])
        record = evaluation.failures["S1"][1]
        assert record.category == DATA
        assert "injected scenario crash" in record.message
        assert evaluation.failure_reason("S1", 1).startswith("ValueError")
        assert evaluation.failure_reason("S1", 0) == ""
        assert any("seed=1" in line for line in evaluation.failure_summary())
