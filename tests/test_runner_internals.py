"""Tests for runner helpers and AutoML preprocessing operators."""

import math

import numpy as np
import pytest

from repro.benchmark.runner import _aligned_rows, estimate_n_clusters
from repro.datagen import generate
from repro.dataset import NUMERICAL, Schema, Table
from repro.ml.automl import _IdentityOp, _PCAOp, _VarianceSelectOp, _make_preprocessor


class TestAlignedRows:
    def _tables(self):
        schema = Schema.from_pairs([("x", NUMERICAL)])
        clean = Table(schema, {"x": [1.0, 2.0, 3.0, 4.0]})
        return schema, clean

    def test_same_length_identity_mapping(self):
        schema, clean = self._tables()
        variant = clean.copy()
        mapping = _aligned_rows(variant, clean, kept_rows=None)
        assert mapping == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_kept_rows_mapping(self):
        schema, clean = self._tables()
        variant = clean.select_rows([0, 2])
        mapping = _aligned_rows(variant, clean, kept_rows=[0, 2])
        assert mapping == {0: 0, 2: 1}

    def test_unaligned_without_kept_rows(self):
        schema, clean = self._tables()
        variant = clean.select_rows([0, 2])
        assert _aligned_rows(variant, clean, kept_rows=None) is None

    def test_wrong_length_kept_rows(self):
        schema, clean = self._tables()
        variant = clean.select_rows([0, 2])
        assert _aligned_rows(variant, clean, kept_rows=[0]) is None


class TestEstimateK:
    def test_two_clusters(self):
        rng = np.random.default_rng(0)
        points = np.vstack(
            [rng.normal(0, 0.3, (25, 2)), rng.normal(8, 0.3, (25, 2))]
        )
        assert estimate_n_clusters(points, k_max=5) == 2

    def test_k_max_respected(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(30, 2))
        assert 2 <= estimate_n_clusters(points, k_max=4) <= 4

    def test_tiny_sample(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [8.0, 8.0], [9.0, 9.0]])
        k = estimate_n_clusters(points, k_max=8)
        assert 2 <= k <= 3


class TestAutoMLPreprocessors:
    def _features(self):
        rng = np.random.default_rng(2)
        return rng.normal(size=(40, 6))

    def test_identity(self):
        features = self._features()
        op = _IdentityOp().fit(features)
        assert np.array_equal(op.transform(features), features)

    def test_pca_reduces_dimensions(self):
        features = self._features()
        op = _PCAOp(n_components=3).fit(features)
        out = op.transform(features)
        assert out.shape == (40, 3)
        # Components are orthonormal: transformed covariance is diagonal.
        covariance = np.cov(out.T)
        off_diagonal = covariance - np.diag(np.diag(covariance))
        assert np.abs(off_diagonal).max() < 0.2

    def test_pca_caps_components(self):
        features = self._features()[:, :2]
        op = _PCAOp(n_components=10).fit(features)
        assert op.transform(features).shape[1] == 2

    def test_variance_select_keeps_top_k(self):
        features = self._features()
        features[:, 3] *= 100.0  # dominant variance
        op = _VarianceSelectOp(k=1).fit(features)
        out = op.transform(features)
        assert out.shape == (40, 1)
        assert np.allclose(out[:, 0], features[:, 3])

    def test_factory(self):
        rng = np.random.default_rng(3)
        for kind in ("identity", "pca", "variance_select"):
            op = _make_preprocessor(kind, rng, 6)
            assert op is not None
        with pytest.raises(ValueError):
            _make_preprocessor("fourier", rng, 6)


class TestScenarioSampling:
    def test_clustering_sample_rows(self):
        from repro.benchmark import run_scenario

        dataset = generate("Water", n_rows=220, seed=5)
        value = run_scenario(
            "S4", dataset.dirty, dataset, "KMeans", seed=0, sample_rows=80
        )
        assert -1.0 <= value <= 1.0
