"""Tests for runner helpers and AutoML preprocessing operators."""

import math

import numpy as np
import pytest

from repro.benchmark.runner import _aligned_rows, estimate_n_clusters
from repro.datagen import generate
from repro.dataset import NUMERICAL, Schema, Table
from repro.ml.automl import _IdentityOp, _PCAOp, _VarianceSelectOp, _make_preprocessor


class TestAlignedRows:
    def _tables(self):
        schema = Schema.from_pairs([("x", NUMERICAL)])
        clean = Table(schema, {"x": [1.0, 2.0, 3.0, 4.0]})
        return schema, clean

    def test_same_length_identity_mapping(self):
        schema, clean = self._tables()
        variant = clean.copy()
        mapping = _aligned_rows(variant, clean, kept_rows=None)
        assert mapping == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_kept_rows_mapping(self):
        schema, clean = self._tables()
        variant = clean.select_rows([0, 2])
        mapping = _aligned_rows(variant, clean, kept_rows=[0, 2])
        assert mapping == {0: 0, 2: 1}

    def test_unaligned_without_kept_rows(self):
        schema, clean = self._tables()
        variant = clean.select_rows([0, 2])
        assert _aligned_rows(variant, clean, kept_rows=None) is None

    def test_wrong_length_kept_rows(self):
        schema, clean = self._tables()
        variant = clean.select_rows([0, 2])
        assert _aligned_rows(variant, clean, kept_rows=[0]) is None


class TestEstimateK:
    def test_two_clusters(self):
        rng = np.random.default_rng(0)
        points = np.vstack(
            [rng.normal(0, 0.3, (25, 2)), rng.normal(8, 0.3, (25, 2))]
        )
        assert estimate_n_clusters(points, k_max=5) == 2

    def test_k_max_respected(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(30, 2))
        assert 2 <= estimate_n_clusters(points, k_max=4) <= 4

    def test_tiny_sample(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [8.0, 8.0], [9.0, 9.0]])
        k = estimate_n_clusters(points, k_max=8)
        assert 2 <= k <= 3


class TestAutoMLPreprocessors:
    def _features(self):
        rng = np.random.default_rng(2)
        return rng.normal(size=(40, 6))

    def test_identity(self):
        features = self._features()
        op = _IdentityOp().fit(features)
        assert np.array_equal(op.transform(features), features)

    def test_pca_reduces_dimensions(self):
        features = self._features()
        op = _PCAOp(n_components=3).fit(features)
        out = op.transform(features)
        assert out.shape == (40, 3)
        # Components are orthonormal: transformed covariance is diagonal.
        covariance = np.cov(out.T)
        off_diagonal = covariance - np.diag(np.diag(covariance))
        assert np.abs(off_diagonal).max() < 0.2

    def test_pca_caps_components(self):
        features = self._features()[:, :2]
        op = _PCAOp(n_components=10).fit(features)
        assert op.transform(features).shape[1] == 2

    def test_variance_select_keeps_top_k(self):
        features = self._features()
        features[:, 3] *= 100.0  # dominant variance
        op = _VarianceSelectOp(k=1).fit(features)
        out = op.transform(features)
        assert out.shape == (40, 1)
        assert np.allclose(out[:, 0], features[:, 3])

    def test_factory(self):
        rng = np.random.default_rng(3)
        for kind in ("identity", "pca", "variance_select"):
            op = _make_preprocessor(kind, rng, 6)
            assert op is not None
        with pytest.raises(ValueError):
            _make_preprocessor("fourier", rng, 6)


class TestScenarioSampling:
    def test_clustering_sample_rows(self):
        from repro.benchmark import run_scenario

        dataset = generate("Water", n_rows=220, seed=5)
        value = run_scenario(
            "S4", dataset.dirty, dataset, "KMeans", seed=0, sample_rows=80
        )
        assert -1.0 <= value <= 1.0


class TestClusteringScenarioPath:
    def _both_dims_spec(self):
        from repro.ml.cluster import KMeans
        from repro.ml.model_zoo import ModelSpec
        from repro.tuning.search import Integer, SearchSpace

        def factory(n_clusters=2, n_components=2):
            assert n_clusters == n_components
            return KMeans(n_clusters=n_clusters, n_init=1, seed=0)

        return ModelSpec(
            "BothDims",
            "clustering",
            factory,
            SearchSpace({
                "n_clusters": Integer(2, 8),
                "n_components": Integer(2, 8),
            }),
        )

    def test_silhouette_sweep_runs_once_for_both_dimensions(self, monkeypatch):
        # A spec declaring n_clusters AND n_components used to pay for
        # the identical silhouette sweep twice.
        from repro.benchmark import runner as runner_module
        from repro.benchmark.runner import run_scenario

        spec = self._both_dims_spec()
        monkeypatch.setattr(
            runner_module, "get_spec", lambda task, name: spec
        )
        sweeps = []
        real = estimate_n_clusters

        def counting(features, k_max=8, seed=0):
            sweeps.append(seed)
            return real(features, k_max=k_max, seed=seed)

        monkeypatch.setattr(runner_module, "estimate_n_clusters", counting)
        dataset = generate("Water", n_rows=180, seed=5)
        value = run_scenario(
            "S4", dataset.dirty, dataset, "BothDims", seed=0, sample_rows=80
        )
        assert -1.0 <= value <= 1.0
        assert len(sweeps) == 1

    def test_explicit_params_skip_the_sweep(self, monkeypatch):
        from repro.benchmark import runner as runner_module
        from repro.benchmark.runner import run_scenario

        spec = self._both_dims_spec()
        monkeypatch.setattr(
            runner_module, "get_spec", lambda task, name: spec
        )

        def forbidden(features, k_max=8, seed=0):
            raise AssertionError("sweep must not run")

        monkeypatch.setattr(runner_module, "estimate_n_clusters", forbidden)
        dataset = generate("Water", n_rows=180, seed=5)
        value = run_scenario(
            "S4", dataset.dirty, dataset, "BothDims", seed=0,
            sample_rows=80,
            model_params={"n_clusters": 3, "n_components": 3},
        )
        assert -1.0 <= value <= 1.0

    def test_tune_trials_rejected_for_clustering(self):
        from repro.benchmark.runner import run_scenario

        dataset = generate("Water", n_rows=180, seed=5)
        with pytest.raises(ValueError, match="tune_trials"):
            run_scenario(
                "S4", dataset.dirty, dataset, "KMeans", seed=0,
                tune_trials=3,
            )
