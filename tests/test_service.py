"""Tests for the benchmark service: jobs, queue, scheduler, API, e2e.

The end-to-end class is the PR's acceptance test: >= 50 deduplicated
submissions over real HTTP against a 4-worker service, one injected
worker SIGKILL, and every result byte-identical to the same config run
through the one-shot CLI (``repro submit --inline``).
"""

import json
import os
import sqlite3
import threading
import time

import pytest

from repro.cli import main
from repro.repository.store import busy_retry, connect, is_busy_error
from repro.resilience.failures import TransientError
from repro.service import (
    BenchService,
    JobQueue,
    JobSpec,
    JobStateError,
    QueueDraining,
    QueueFull,
    SchedulerPolicy,
    ServiceClient,
    ServiceError,
    UnknownJobError,
    canonical_result_text,
    execute_job,
    strip_timing,
)
from repro.service.scheduler import fair_share_counts


def _spec(seed=0, dataset="Nasa", rows=60, detectors=("MVD",)):
    return JobSpec(
        kind="detect", dataset=dataset, rows=rows, seed=seed,
        options={"detectors": list(detectors)},
    )


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ----------------------------------------------------------------------
# Job specs
# ----------------------------------------------------------------------
class TestJobSpec:
    def test_content_addressed_identity(self):
        assert _spec(seed=1).job_id == _spec(seed=1).job_id
        assert _spec(seed=1).job_id != _spec(seed=2).job_id
        # Option *content* matters, not dict ordering.
        a = JobSpec(kind="detect", dataset="Nasa",
                    options={"detectors": ["MVD"], "block_rows": 32})
        b = JobSpec(kind="detect", dataset="Nasa",
                    options={"block_rows": 32, "detectors": ["MVD"]})
        assert a.job_id == b.job_id

    def test_payload_round_trip(self):
        spec = _spec(seed=3)
        again = JobSpec.from_payload(spec.to_payload())
        assert again == spec and again.job_id == spec.job_id

    @pytest.mark.parametrize("payload, fragment", [
        ({"kind": "mine", "dataset": "Nasa"}, "kind"),
        ({"kind": "detect", "dataset": "NoSuch"}, "dataset"),
        ({"kind": "detect", "dataset": "Nasa", "rows": 0}, "rows"),
        ({"kind": "detect", "dataset": "Nasa",
          "options": {"nope": 1}}, "unknown option"),
        ({"kind": "detect", "dataset": "Nasa",
          "options": {"detectors": ["NoSuch"]}}, "detectors"),
        ({"kind": "model", "dataset": "Soccer"}, "task"),
        ({"kind": "detect", "dataset": "Nasa", "extra": 1}, "field"),
    ])
    def test_malformed_configs_rejected(self, payload, fragment):
        with pytest.raises(ValueError, match=fragment):
            JobSpec.from_payload(payload)

    def test_strip_timing_zeroes_wall_clock_fields(self):
        payload = {
            "runs": [{"runtime_seconds": 1.23,
                      "failure": {"elapsed_seconds": 4.5}}],
            "runtime_seconds": 9.0,
        }
        stripped = strip_timing(payload)
        assert stripped["runtime_seconds"] is None
        assert stripped["runs"][0]["runtime_seconds"] is None
        assert stripped["runs"][0]["failure"]["elapsed_seconds"] == 0.0

    def test_execute_job_result_is_deterministic(self):
        spec = _spec(seed=5)
        first = canonical_result_text(execute_job(spec))
        second = canonical_result_text(execute_job(spec))
        assert first == second


# ----------------------------------------------------------------------
# Scheduler policy
# ----------------------------------------------------------------------
class TestSchedulerPolicy:
    def test_priority_classes(self):
        policy = SchedulerPolicy()
        assert policy.priority_for("interactive") < policy.priority_for("bulk")
        with pytest.raises(ValueError, match="unknown priority"):
            policy.priority_for("vip")
        assert policy.class_name(policy.priority_for("batch")) == "batch"

    def test_admission_bounds_depth_and_submitter(self):
        policy = SchedulerPolicy(max_depth=2, max_pending_per_submitter=1)
        policy.admit(1, 0, "a")
        with pytest.raises(QueueFull, match="capacity"):
            policy.admit(2, 0, "a")
        with pytest.raises(QueueFull, match="pending"):
            policy.admit(0, 1, "a")

    def test_queue_full_carries_retry_hint(self):
        policy = SchedulerPolicy(max_depth=1, retry_after_seconds=2.5)
        with pytest.raises(QueueFull) as info:
            policy.admit(1, 0, "a")
        assert info.value.retry_after_seconds == 2.5

    def test_fair_share_counts(self):
        counts = fair_share_counts((
            ("a", "leased"), ("a", "running"), ("b", "queued"),
            ("b", "leased"),
        ))
        assert counts == {"a": 2, "b": 1}

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            SchedulerPolicy(max_depth=0)
        with pytest.raises(ValueError):
            SchedulerPolicy(default_class="vip")


# ----------------------------------------------------------------------
# Queue
# ----------------------------------------------------------------------
class TestJobQueue:
    def _queue(self, tmp_path, clock, **policy):
        policy.setdefault("lease_seconds", 10.0)
        return JobQueue(
            str(tmp_path / "q.sqlite"),
            policy=SchedulerPolicy(**policy), clock=clock,
        )

    def test_submit_dedup_and_lifecycle(self, tmp_path):
        clock = FakeClock()
        queue = self._queue(tmp_path, clock)
        receipt = queue.submit(_spec(seed=1))
        assert not receipt.deduplicated and receipt.state == "queued"
        dup = queue.submit(_spec(seed=1), submitter="else")
        assert dup.deduplicated and dup.job_id == receipt.job_id

        job = queue.lease("w0")
        assert job.job_id == receipt.job_id and job.attempts == 1
        assert queue.mark_running(job.job_id, "w0")
        assert queue.complete(job.job_id, "w0", {"answer": 42})
        record = queue.get(job.job_id)
        assert record["state"] == "done" and record["latency_seconds"] >= 0
        assert queue.result(job.job_id) == {"answer": 42}
        # Completed jobs deduplicate too: results are served, not re-run.
        assert queue.submit(_spec(seed=1)).deduplicated

    def test_lease_expiry_requeues_exactly_once(self, tmp_path):
        clock = FakeClock()
        queue = self._queue(tmp_path, clock, lease_seconds=5.0)
        queue.submit(_spec(seed=1))
        job = queue.lease("w0")
        # Heartbeats keep the lease alive across the nominal expiry.
        clock.advance(4.0)
        assert queue.heartbeat(job.job_id, "w0")
        clock.advance(4.0)
        assert queue.requeue_expired() == []
        # Silence past the lease forfeits the job -- exactly one requeue.
        clock.advance(6.0)
        assert queue.requeue_expired() == [job.job_id]
        record = queue.get(job.job_id)
        assert record["state"] == "queued" and record["requeues"] == 1
        # The dead worker's stale result is rejected...
        assert not queue.complete(job.job_id, "w0", {"stale": True})
        # ...and the re-leased worker's result wins.
        retry = queue.lease("w1")
        assert retry.attempts == 2
        assert queue.complete(retry.job_id, "w1", {"fresh": True})
        assert queue.result(job.job_id) == {"fresh": True}
        assert queue.stats()["counters"]["jobs.stale_results_dropped"] == 1

    def test_expiry_exhausts_attempts_into_failed(self, tmp_path):
        clock = FakeClock()
        queue = self._queue(tmp_path, clock, lease_seconds=1.0,
                            max_attempts=2)
        queue.submit(_spec(seed=1))
        for _ in range(2):
            assert queue.lease(f"w{_}") is not None
            clock.advance(2.0)
        assert queue.lease("w9") is None  # sweep ran; nothing left
        record = queue.get(_spec(seed=1).job_id)
        assert record["state"] == "failed"
        assert record["failure"]["error_type"] == "LeaseExpired"
        assert record["failure"]["category"] == "capability"

    def test_transient_failures_retry_data_failures_do_not(self, tmp_path):
        clock = FakeClock()
        queue = self._queue(tmp_path, clock, max_attempts=3)
        queue.submit(_spec(seed=1))
        job = queue.lease("w0")
        assert queue.fail(
            job.job_id, "w0", {"category": "transient"}, retryable=True
        ) == "queued"
        job = queue.lease("w0")
        assert queue.fail(
            job.job_id, "w0", {"category": "data", "message": "bad"},
            retryable=False,
        ) == "failed"
        assert queue.get(job.job_id)["failure"]["category"] == "data"

    def test_priority_and_fair_share_ordering(self, tmp_path):
        clock = FakeClock()
        queue = self._queue(tmp_path, clock)
        bulk = queue.submit(_spec(seed=1), priority="bulk", submitter="a")
        queue.submit(_spec(seed=2), priority="batch", submitter="a")
        queue.submit(_spec(seed=3), priority="batch", submitter="b")
        interactive = queue.submit(
            _spec(seed=4), priority="interactive", submitter="a"
        )
        # Interactive beats everything regardless of submission order.
        first = queue.lease("w0")
        assert first.job_id == interactive.job_id
        # Within 'batch': submitter a already has one in flight, so
        # fair share hands the next lease to b despite a's earlier seq.
        assert queue.lease("w1").job_id == _spec(seed=3).job_id
        assert queue.lease("w2").job_id == _spec(seed=2).job_id
        assert queue.lease("w3").job_id == bulk.job_id

    def test_admission_control_and_revival(self, tmp_path):
        clock = FakeClock()
        queue = self._queue(tmp_path, clock, max_depth=2)
        queue.submit(_spec(seed=1))
        queue.submit(_spec(seed=2))
        with pytest.raises(QueueFull):
            queue.submit(_spec(seed=3))
        # Dedup of a known job bypasses the full queue (adds no work).
        assert queue.submit(_spec(seed=1)).deduplicated

        # Cancel, then revive under the same id with attempts reset.
        cancelled = queue.cancel(_spec(seed=2).job_id)
        assert cancelled == "cancelled"
        revived = queue.submit(_spec(seed=2))
        assert not revived.deduplicated
        assert queue.get(revived.job_id)["state"] == "queued"

    def test_cancel_rules(self, tmp_path):
        clock = FakeClock()
        queue = self._queue(tmp_path, clock)
        with pytest.raises(UnknownJobError):
            queue.cancel("absent")
        queue.submit(_spec(seed=1))
        job = queue.lease("w0")
        with pytest.raises(JobStateError, match="leased"):
            queue.cancel(job.job_id)

    def test_draining_blocks_submissions_and_leases(self, tmp_path):
        clock = FakeClock()
        queue = self._queue(tmp_path, clock)
        queue.submit(_spec(seed=1))
        queue.set_draining(True)
        with pytest.raises(QueueDraining):
            queue.submit(_spec(seed=2))
        assert queue.submit(_spec(seed=1)).deduplicated  # dedup still ok
        assert queue.lease("w0") is None
        # Another connection to the same file observes the flag.
        other = JobQueue(queue.path, policy=queue.policy, clock=clock)
        assert other.draining()
        other.close()
        queue.set_draining(False)
        assert queue.lease("w0") is not None

    def test_cross_process_comparable_clock(self, tmp_path):
        # The lease math relies on time.monotonic being system-wide;
        # a fresh default-clock queue must see leases from another
        # default-clock connection as live.
        queue = JobQueue(
            str(tmp_path / "q.sqlite"),
            policy=SchedulerPolicy(lease_seconds=30.0),
        )
        queue.submit(_spec(seed=1))
        assert queue.lease("w0") is not None
        other = JobQueue(queue.path, policy=queue.policy)
        assert other.requeue_expired() == []
        other.close()
        queue.close()


# ----------------------------------------------------------------------
# Repository store concurrency hardening (WAL + busy retry satellite)
# ----------------------------------------------------------------------
class TestStoreConcurrency:
    def test_connect_enables_wal_and_busy_timeout(self, tmp_path):
        connection = connect(str(tmp_path / "s.sqlite"))
        (mode,) = connection.execute("PRAGMA journal_mode").fetchone()
        assert mode == "wal"
        (timeout,) = connection.execute("PRAGMA busy_timeout").fetchone()
        assert timeout == 5000
        connection.close()

    def test_is_busy_error_classification(self):
        assert is_busy_error(sqlite3.OperationalError("database is locked"))
        assert not is_busy_error(sqlite3.OperationalError("no such table"))
        assert not is_busy_error(ValueError("database is locked"))

    def test_busy_retry_retries_then_succeeds(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        assert busy_retry(flaky, sleep=lambda s: None) == "ok"
        assert calls["n"] == 3

    def test_busy_retry_surfaces_as_transient(self):
        def always_locked():
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(TransientError, match="locked"):
            busy_retry(always_locked, max_attempts=2, sleep=lambda s: None)

    def test_busy_retry_passes_other_errors_through(self):
        def broken():
            raise sqlite3.OperationalError("no such table: nope")

        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            busy_retry(broken, sleep=lambda s: None)

    def test_writers_in_two_connections_interleave(self, tmp_path):
        # WAL + busy timeout: two connections to one store can both
        # write without "database is locked" surfacing to the caller.
        path = str(tmp_path / "w.sqlite")
        first = connect(path, check_same_thread=False)
        second = connect(path, check_same_thread=False)
        first.execute("CREATE TABLE t (v INTEGER)")
        first.commit()
        errors = []

        def writer(connection, value):
            try:
                for _ in range(20):
                    connection.execute("INSERT INTO t VALUES (?)", (value,))
                    connection.commit()
            except sqlite3.OperationalError as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(c, i))
            for i, c in enumerate((first, second))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        (count,) = first.execute("SELECT COUNT(*) FROM t").fetchone()
        assert count == 40
        first.close()
        second.close()


# ----------------------------------------------------------------------
# HTTP API against a live (sleepy-execute) service
# ----------------------------------------------------------------------
@pytest.fixture
def sleepy_service(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SERVICE_SLEEP_SECONDS", "0.02")
    service = BenchService(
        str(tmp_path / "q.sqlite"),
        n_workers=2,
        policy=SchedulerPolicy(lease_seconds=10.0),
        execute_ref="repro.service.testing:sleepy_execute",
        events_path=str(tmp_path / "events.jsonl"),
    )
    with service:
        yield service


class TestHttpApi:
    def test_submit_status_result_cancel_stats(self, sleepy_service):
        client = ServiceClient(sleepy_service.address, timeout=10.0)
        assert client.health()["status"] == "ok"

        receipt = client.submit(_spec(seed=1).to_payload(), submitter="t")
        assert receipt["state"] == "queued" and not receipt["deduplicated"]
        assert client.submit(_spec(seed=1).to_payload())["deduplicated"]

        record = client.wait(receipt["job_id"], deadline_seconds=30.0)
        assert record["state"] == "done"
        result = client.result(receipt["job_id"])
        assert result["kind"] == "sleepy"
        assert result["job_id"] == receipt["job_id"]

        stats = client.stats()
        assert stats["states"]["done"] >= 1
        assert stats["counters"]["jobs.deduplicated"] == 1
        metrics = client.metrics()
        assert metrics["workers"]["configured"] == 2

        listed = client.jobs()
        assert any(r["job_id"] == receipt["job_id"] for r in listed)

    def test_error_statuses(self, sleepy_service):
        client = ServiceClient(sleepy_service.address, timeout=10.0)
        with pytest.raises(ServiceError) as not_found:
            client.status("absent")
        assert not_found.value.status == 404

        with pytest.raises(ServiceError) as bad:
            client.submit({"kind": "detect", "dataset": "NoSuch"})
        assert bad.value.status == 400
        assert "malformed job config" in str(bad.value)

        receipt = client.submit(_spec(seed=2).to_payload())
        client.wait(receipt["job_id"], deadline_seconds=30.0)
        with pytest.raises(ServiceError) as conflict:
            client.cancel(receipt["job_id"])
        assert conflict.value.status == 409

        # Result for a queued/unknown job: 409 / 404, not a hang.
        with pytest.raises(ServiceError) as missing:
            client.result("absent")
        assert missing.value.status == 404

    def test_failed_job_maps_failure_category_to_status(
        self, tmp_path, monkeypatch
    ):
        service = BenchService(
            str(tmp_path / "qf.sqlite"), n_workers=1,
            execute_ref="repro.service.testing:failing_execute",
        )
        with service:
            client = ServiceClient(service.address, timeout=10.0)
            receipt = client.submit(_spec(seed=3).to_payload())
            with pytest.raises(ServiceError):
                client.wait(receipt["job_id"], deadline_seconds=30.0)
            record = client.status(receipt["job_id"])
            assert record["state"] == "failed"
            assert record["failure"]["category"] == "data"
            with pytest.raises(ServiceError) as info:
                client.result_text(receipt["job_id"])
            assert info.value.status == 422  # data -> unprocessable

    def test_transient_worker_failures_retry_to_success(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SERVICE_TEST_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_SERVICE_SLEEP_SECONDS", "0.01")
        service = BenchService(
            str(tmp_path / "qr.sqlite"), n_workers=1,
            execute_ref="repro.service.testing:flaky_execute",
        )
        with service:
            client = ServiceClient(service.address, timeout=10.0)
            receipt = client.submit(_spec(seed=4).to_payload())
            record = client.wait(receipt["job_id"], deadline_seconds=30.0)
        assert record["state"] == "done"
        assert record["attempts"] == 2  # transient flake, then success

    def test_backpressure_returns_429_with_retry_after(self, tmp_path):
        # No workers polling: jobs stay queued, so depth 1 fills it.
        queue = JobQueue(
            str(tmp_path / "qb.sqlite"),
            policy=SchedulerPolicy(max_depth=1, retry_after_seconds=2.0),
        )

        class StubService:
            def __init__(self, queue):
                self.queue = queue

            def metrics_snapshot(self):
                return {}

            def note_request_error(self, exc, status):
                pass

        from repro.service.api import start_api_server

        server, thread = start_api_server(StubService(queue))
        try:
            host, port = server.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}", timeout=5.0)
            client.submit(_spec(seed=1).to_payload())
            from repro.service import RetryLater

            with pytest.raises(RetryLater) as info:
                client.submit(_spec(seed=2).to_payload())
            assert info.value.status == 429
            assert info.value.retry_after_seconds == 2.0
        finally:
            server.shutdown()
            server.server_close()
            queue.close()

    def test_draining_service_rejects_new_work(self, sleepy_service):
        client = ServiceClient(sleepy_service.address, timeout=10.0)
        sleepy_service.queue.set_draining(True)
        try:
            from repro.service import RetryLater

            with pytest.raises(RetryLater) as info:
                client.submit(_spec(seed=9).to_payload())
            assert info.value.status == 503
            assert client.health()["status"] == "draining"
        finally:
            sleepy_service.queue.set_draining(False)

    def test_worker_ledger_shards_tag_job_ids(self, sleepy_service):
        client = ServiceClient(sleepy_service.address, timeout=10.0)
        receipt = client.submit(_spec(seed=11).to_payload())
        client.wait(receipt["job_id"], deadline_seconds=30.0)
        sleepy_service.drain()
        events_root = os.path.dirname(sleepy_service.queue_path)
        shards = [
            os.path.join(events_root, name)
            for name in os.listdir(events_root)
            if ".jsonl.worker-" in name
        ]
        assert shards
        events = []
        for shard in shards:
            with open(shard, encoding="utf-8") as handle:
                events.extend(json.loads(line) for line in handle)
        started = [e for e in events if e["event"] == "job_started"]
        finished = [e for e in events if e["event"] == "job_finished"]
        assert any(e["job_id"] == receipt["job_id"] for e in started)
        assert any(
            e["job_id"] == receipt["job_id"] and e["status"] == "done"
            for e in finished
        )
        spans = [e for e in events if e["event"] == "span"]
        assert any(
            e["span"].get("attrs", {}).get("job_id") == receipt["job_id"]
            for e in spans
        )


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_finishes_in_flight_and_keeps_queue_durable(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SERVICE_SLEEP_SECONDS", "0.2")
        service = BenchService(
            str(tmp_path / "q.sqlite"), n_workers=1,
            policy=SchedulerPolicy(lease_seconds=10.0),
            execute_ref="repro.service.testing:sleepy_execute",
        )
        specs = [_spec(seed=s) for s in range(4)]
        with service:
            client = ServiceClient(service.address, timeout=10.0)
            for spec in specs:
                client.submit(spec.to_payload())
            # Let the single worker pick up the first job, then drain.
            deadline = time.monotonic() + 10.0
            while (
                service.queue.in_flight() == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert service.drain(timeout=30.0)

        # In-flight work finished; nothing was abandoned mid-execution.
        queue = JobQueue(str(tmp_path / "q.sqlite"))
        states = queue.stats()["states"]
        assert states["leased"] == 0 and states["running"] == 0
        assert states["done"] >= 1
        # Undrained jobs survive, still queued, for the next service.
        assert states["done"] + states["queued"] == len(specs)
        queue.close()

        # A restarted service picks the queued remainder up.
        monkeypatch.setenv("REPRO_SERVICE_SLEEP_SECONDS", "0.01")
        revived = BenchService(
            str(tmp_path / "q.sqlite"), n_workers=2,
            execute_ref="repro.service.testing:sleepy_execute",
        )
        with revived:
            client = ServiceClient(revived.address, timeout=10.0)
            client.wait_all(
                [spec.job_id for spec in specs], deadline_seconds=60.0
            )


# ----------------------------------------------------------------------
# End-to-end acceptance
# ----------------------------------------------------------------------
class TestEndToEnd:
    N_UNIQUE = 10
    SUBMITS_PER_SPEC = 5  # 50 submissions total, 40 deduplicated

    def _specs(self):
        datasets = ("Nasa", "SmartFactory")
        return [
            _spec(
                seed=i, dataset=datasets[i % 2], rows=60,
                detectors=("MVD", "SD"),
            )
            for i in range(self.N_UNIQUE)
        ]

    def test_fifty_deduplicated_jobs_survive_worker_kill(
        self, tmp_path, capsys
    ):
        specs = self._specs()
        service = BenchService(
            str(tmp_path / "q.sqlite"),
            n_workers=4,
            policy=SchedulerPolicy(lease_seconds=5.0),
            store_path=str(tmp_path / "store.sqlite"),
            events_path=str(tmp_path / "events.jsonl"),
        )
        with service:
            client = ServiceClient(service.address, timeout=30.0)
            receipts = []
            for round_number in range(self.SUBMITS_PER_SPEC):
                for index, spec in enumerate(specs):
                    receipts.append(client.submit(
                        spec.to_payload(),
                        submitter=f"user-{index % 3}",
                    ))
            assert len(receipts) == 50
            unique_ids = {r["job_id"] for r in receipts}
            assert len(unique_ids) == self.N_UNIQUE
            deduplicated = sum(1 for r in receipts if r["deduplicated"])
            assert deduplicated == 50 - self.N_UNIQUE

            # Chaos: SIGKILL one of the four workers mid-stream.
            assert service.pool.alive_count() == 4
            service.pool.kill(0)
            assert service.pool.alive_count() == 3

            client.wait_all(sorted(unique_ids), deadline_seconds=300.0)
            service_results = {
                spec.job_id: client.result_text(spec.job_id)
                for spec in specs
            }
            stats = client.stats()
            assert stats["states"]["done"] == self.N_UNIQUE
            assert stats["states"]["failed"] == 0

        # Byte-identity: every service result equals the one-shot CLI's
        # canonical stdout for the same config.
        for spec in specs:
            capsys.readouterr()
            assert main([
                "submit", spec.dataset, "--kind", "detect",
                "--rows", str(spec.rows), "--seed", str(spec.seed),
                "--options", json.dumps(dict(spec.options)),
                "--inline", "--quiet",
            ]) == 0
            inline_text = capsys.readouterr().out
            assert inline_text == service_results[spec.job_id] + "\n"
