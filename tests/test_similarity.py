"""Tests for the Magellan-style similarity feature library."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset import CATEGORICAL, NUMERICAL, Schema, Table
from repro.detectors.similarity import (
    character_ngrams,
    jaccard_ngram,
    jaccard_tokens,
    levenshtein,
    levenshtein_ratio,
    monge_elkan,
    numeric_similarity,
    overlap_coefficient,
    pair_feature_names,
    record_pair_features,
)

short_text = st.text(alphabet="abcxyz ", max_size=12)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "abd", 1),
            ("abc", "ab", 1),
            ("abc", "xabc", 1),
            ("kitten", "sitting", 3),
            ("", "abc", 3),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert levenshtein(a, b) == expected

    def test_cutoff(self):
        assert levenshtein("aaaaaaaa", "bbbbbbbb", cutoff=2) == 3

    @given(short_text, short_text)
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_text, short_text, short_text)
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


class TestStringSimilarities:
    @pytest.mark.parametrize(
        "fn",
        [jaccard_ngram, jaccard_tokens, overlap_coefficient,
         levenshtein_ratio, monge_elkan],
        ids=lambda f: f.__name__,
    )
    def test_identity_is_one(self, fn):
        assert fn("hello world", "hello world") == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "fn",
        [jaccard_ngram, jaccard_tokens, overlap_coefficient,
         levenshtein_ratio, monge_elkan],
        ids=lambda f: f.__name__,
    )
    @given(a=short_text, b=short_text)
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, fn, a, b):
        assert 0.0 <= fn(a, b) <= 1.0

    def test_ngrams(self):
        grams = character_ngrams("ab", 3)
        assert "  a" in grams

    def test_token_reorder_invariance(self):
        assert jaccard_tokens("new york", "york new") == 1.0
        assert overlap_coefficient("new york city", "new york") == 1.0

    def test_monge_elkan_partial(self):
        assert monge_elkan("john smith", "jon smith") > 0.8
        assert monge_elkan("john smith", "zzz qqq") < 0.3


class TestNumericSimilarity:
    def test_equality(self):
        assert numeric_similarity(5.0, 5.0, 2.0) == 1.0

    def test_one_scale_away_is_zero(self):
        assert numeric_similarity(0.0, 2.0, 2.0) == 0.0

    def test_zero_scale(self):
        assert numeric_similarity(1.0, 1.0, 0.0) == 1.0
        assert numeric_similarity(1.0, 2.0, 0.0) == 0.0


class TestRecordPairFeatures:
    def _table(self):
        schema = Schema.from_pairs([("x", NUMERICAL), ("name", CATEGORICAL)])
        return Table(
            schema,
            {"x": [1.0, 1.0, 9.0], "name": ["acme corp", "acme corp", "zzz"]},
        )

    def test_feature_names_align_with_vector(self):
        table = self._table()
        names = pair_feature_names(table)
        features = record_pair_features(table, 0, 1, {"x": 1.0})
        assert len(names) == len(features)
        assert names[0] == "x:numeric"

    def test_duplicates_score_high(self):
        table = self._table()
        same = record_pair_features(table, 0, 1, {"x": 1.0})
        different = record_pair_features(table, 0, 2, {"x": 1.0})
        assert same.mean() > 0.99
        assert different.mean() < 0.5

    def test_missing_is_neutral(self):
        schema = Schema.from_pairs([("c", CATEGORICAL)])
        table = Table(schema, {"c": ["a", None]})
        features = record_pair_features(table, 0, 1, {})
        assert np.allclose(features, 0.5)
