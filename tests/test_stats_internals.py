"""Deeper tests for the Wilcoxon implementation: ranks, ties, and the
exact/approximate boundary."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.metrics.stats import _signed_ranks, wilcoxon_signed_rank


class TestSignedRanks:
    def test_simple_ranking(self):
        ranks = _signed_ranks(np.array([0.5, -2.0, 1.0]))
        # |values| sorted: 0.5 < 1.0 < 2.0 -> ranks 1, 3, 2.
        assert ranks.tolist() == [1.0, 3.0, 2.0]

    def test_tied_magnitudes_share_mean_rank(self):
        ranks = _signed_ranks(np.array([1.0, -1.0, 2.0]))
        assert ranks[0] == ranks[1] == 1.5
        assert ranks[2] == 3.0

    def test_all_tied(self):
        ranks = _signed_ranks(np.array([3.0, -3.0, 3.0, -3.0]))
        assert np.allclose(ranks, 2.5)


class TestExactApproxBoundary:
    def test_exact_below_threshold(self):
        # 8 non-zero pairs -> exact enumeration path.
        a = [1.0, 2, 3, 4, 5, 6, 7, 8]
        b = [0.5, 1, 2, 3, 4, 5, 6, 7]
        ours = wilcoxon_signed_rank(a, b, exact_threshold=12)
        theirs = scipy_stats.wilcoxon(a, b, method="exact")
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-9)

    def test_forced_approximation_close_to_exact(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, 10)
        b = a + rng.normal(0.8, 0.3, 10)
        exact = wilcoxon_signed_rank(a, b, exact_threshold=12)
        approx = wilcoxon_signed_rank(a, b, exact_threshold=0)
        assert approx.p_value == pytest.approx(exact.p_value, abs=0.03)

    def test_tie_correction_reduces_variance(self):
        # Many tied differences exercise the tie-correction term; result
        # must stay a valid probability and match scipy's approx method.
        a = [1.0] * 20 + [3.0] * 20
        b = [0.0] * 20 + [1.0] * 20
        ours = wilcoxon_signed_rank(a, b, exact_threshold=0)
        theirs = scipy_stats.wilcoxon(
            a, b, correction=True, method="approx"
        )
        assert 0.0 <= ours.p_value <= 1.0
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=0.05)

    def test_n_effective_excludes_zero_differences(self):
        result = wilcoxon_signed_rank([1.0, 2.0, 3.0], [1.0, 2.0, 5.0])
        assert result.n_effective == 1

    def test_nan_input_raises_instead_of_poisoning(self):
        # A NaN difference used to sail through the != 0 filter and turn
        # both the statistic and the p-value into NaN.
        with pytest.raises(ValueError, match="NaN"):
            wilcoxon_signed_rank([1.0, float("nan")], [0.5, 0.7])
        with pytest.raises(ValueError, match="drop incomplete pairs"):
            wilcoxon_signed_rank([1.0, 0.9], [0.5, float("nan")])

    def test_reject_null_threshold(self):
        rng = np.random.default_rng(1)
        a = rng.normal(1.0, 0.01, 30)
        b = rng.normal(0.0, 0.01, 30)
        result = wilcoxon_signed_rank(a, b)
        assert result.reject_null(0.05)
        assert not result.reject_null(1e-12)
