"""Tests for the hyperparameter search layer and AutoML systems."""

import numpy as np
import pytest

from repro.ml.automl import AutoLearn, TPotLite
from repro.ml.model_zoo import (
    CLASSIFICATION,
    CLUSTERING,
    REGRESSION,
    build_model,
    get_spec,
    specs_for_task,
)
from repro.tuning import Categorical, Float, Integer, SearchSpace, Study, tune_estimator


class TestDistributions:
    def test_float_bounds(self):
        rng = np.random.default_rng(0)
        dim = Float(0.1, 10.0, log=True)
        for _ in range(50):
            value = dim.sample(rng)
            assert 0.1 <= value <= 10.0
        near = dim.sample_near(1.0, rng)
        assert 0.1 <= near <= 10.0

    def test_float_validation(self):
        with pytest.raises(ValueError):
            Float(5.0, 1.0)
        with pytest.raises(ValueError):
            Float(-1.0, 1.0, log=True)

    def test_integer(self):
        rng = np.random.default_rng(1)
        dim = Integer(1, 5)
        values = {dim.sample(rng) for _ in range(100)}
        assert values <= {1, 2, 3, 4, 5}
        assert len(values) >= 3
        assert 1 <= dim.sample_near(3, rng) <= 5
        with pytest.raises(ValueError):
            Integer(5, 1)

    def test_categorical(self):
        rng = np.random.default_rng(2)
        dim = Categorical(["a", "b"])
        assert dim.sample(rng) in ("a", "b")
        assert dim.sample_near("a", rng) in ("a", "b")
        with pytest.raises(ValueError):
            Categorical([])

    def test_space_sampling(self):
        space = SearchSpace({"x": Float(0, 1), "k": Integer(1, 3)})
        rng = np.random.default_rng(3)
        params = space.sample(rng)
        assert set(params) == {"x", "k"}
        with pytest.raises(ValueError):
            SearchSpace({})


class TestStudy:
    def test_random_search_finds_good_region(self):
        space = SearchSpace({"x": Float(-5, 5)})
        study = Study(space, sampler="random", seed=0)
        best = study.optimize(lambda p: -(p["x"] - 2.0) ** 2, n_trials=60)
        assert abs(best.params["x"] - 2.0) < 1.0

    def test_tpe_beats_random_on_average(self):
        def objective(p):
            return -(p["x"] - 2.0) ** 2 - (p["y"] - 1.0) ** 2

        space_factory = lambda: SearchSpace(
            {"x": Float(-10, 10), "y": Float(-10, 10)}
        )
        tpe_scores, random_scores = [], []
        for seed in range(5):
            tpe = Study(space_factory(), sampler="tpe", seed=seed)
            tpe.optimize(objective, 25)
            tpe_scores.append(tpe.best_trial.score)
            rand = Study(space_factory(), sampler="random", seed=seed)
            rand.optimize(objective, 25)
            random_scores.append(rand.best_trial.score)
        assert np.mean(tpe_scores) >= np.mean(random_scores) - 0.5

    def test_study_validation(self):
        space = SearchSpace({"x": Float(0, 1)})
        with pytest.raises(ValueError):
            Study(space, sampler="grid")
        with pytest.raises(ValueError):
            Study(space).optimize(lambda p: 0.0, 0)
        with pytest.raises(RuntimeError):
            _ = Study(space).best_trial

    def test_ask_tell_interface(self):
        space = SearchSpace({"k": Integer(1, 10)})
        study = Study(space, seed=1)
        for _ in range(8):
            params = study.ask()
            study.tell(params, float(params["k"]))
        assert study.best_trial.params["k"] == max(
            t.params["k"] for t in study.trials
        )


class TestTuneEstimator:
    def test_tunes_knn(self):
        rng = np.random.default_rng(4)
        features = rng.normal(size=(120, 3))
        labels = (features[:, 0] > 0).astype(int)
        from repro.ml import KNNClassifier

        model, trial = tune_estimator(
            KNNClassifier,
            SearchSpace({"n_neighbors": Integer(1, 15)}),
            features[:80],
            labels[:80],
            features[80:],
            labels[80:],
            n_trials=8,
            seed=0,
        )
        assert model.score(features[80:], labels[80:]) > 0.8
        assert 1 <= trial.params["n_neighbors"] <= 15


class TestModelZoo:
    def test_registry_counts_match_table2(self):
        assert len(specs_for_task(CLASSIFICATION)) == 12
        assert len(specs_for_task(REGRESSION)) == 11
        assert len(specs_for_task(CLUSTERING)) == 6

    def test_every_spec_builds_and_samples(self):
        rng = np.random.default_rng(5)
        for task in (CLASSIFICATION, REGRESSION, CLUSTERING):
            for spec in specs_for_task(task):
                params = spec.space.sample(rng)
                model = spec.build(**params)
                assert model is not None

    def test_get_spec_and_build(self):
        spec = get_spec(CLASSIFICATION, "XGB")
        assert spec.name == "XGB"
        model = build_model(REGRESSION, "Ridge", alpha=3.0)
        assert model.alpha == 3.0
        with pytest.raises(KeyError):
            get_spec(CLASSIFICATION, "nope")
        with pytest.raises(ValueError):
            specs_for_task("ranking")


def _toy_classification(n=150, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 4))
    labels = (features[:, 0] + features[:, 1] > 0).astype(int)
    return features, labels


class TestAutoML:
    def test_autolearn_learns(self):
        features, labels = _toy_classification(seed=6)
        model = AutoLearn(task=CLASSIFICATION, time_budget=8, seed=0)
        model.fit(features[:100], labels[:100])
        assert model.score(features[100:], labels[100:]) > 0.75
        assert len(model.history_) == 8
        assert model.best_genome_ is not None

    def test_tpot_learns(self):
        features, labels = _toy_classification(seed=7)
        model = TPotLite(
            task=CLASSIFICATION, population_size=4, generations=2, seed=0
        )
        model.fit(features[:100], labels[:100])
        assert model.score(features[100:], labels[100:]) > 0.75

    def test_automl_regression(self):
        rng = np.random.default_rng(8)
        features = rng.normal(size=(120, 3))
        targets = features @ np.array([1.0, -2.0, 0.5]) + 1.0
        model = AutoLearn(task=REGRESSION, time_budget=8, seed=1)
        model.fit(features[:90], targets[:90])
        assert model.score(features[90:], targets[90:]) > 0.6

    def test_automl_validation(self):
        with pytest.raises(ValueError):
            AutoLearn(task=CLUSTERING)
        with pytest.raises(ValueError):
            AutoLearn(time_budget=0)
        with pytest.raises(ValueError):
            TPotLite(population_size=1)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            AutoLearn().predict(np.zeros((2, 2)))
