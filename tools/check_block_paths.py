#!/usr/bin/env python
"""Lint: forbid whole-table materialization inside block-path functions.

The out-of-core substrate's contract is that ``*_block`` functions touch
only the row block handed to them: the caller fits whole-table profiles
once, then streams zero-copy block views through the block path, keeping
peak memory proportional to the block size.  One stray
``table.as_float(...)`` inside a block path silently re-materializes a
whole-table column *per block* -- correctness survives (the result is
still byte-identical) but memory and runtime quietly regress to
super-linear, which is exactly the failure mode this substrate exists to
prevent and the hardest one to catch in review.

The rule: inside any function whose name ends in ``_block`` (or is
``detect_block``) in a declared block-path module, the table
materializer methods in ``MATERIALIZERS`` may only be called on a
receiver literally named ``block`` -- the conventional name for the
row-block view parameter.  Calls on ``table``, ``context.dirty``,
``self._table``, or any other receiver are violations.

Intentional exceptions live in ``ALLOWLIST`` with the reason recorded
next to each entry.  The tier-1 suite asserts ``check_tree`` is clean
(see ``tests/test_lint.py``), mirroring ``check_hot_loops.py``.

Usage::

    python tools/check_block_paths.py [src-root]

Exit status 0 means clean; 1 means violations (printed one per line
as ``path:lineno: message``).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: Modules whose ``*_block`` functions are held to the block-only
#: contract, relative to the src root.
BLOCK_PATH_MODULES = {
    "repro/detectors/features.py",
    "repro/detectors/simple.py",
    "repro/dataset/encoding.py",
    "repro/ml/tree.py",
    "repro/ml/forest.py",
    "repro/ml/neighbors.py",
}

#: Table methods that materialize whole-table state (columns, masks,
#: row sets) -- exactly what a block path must never do on the parent.
MATERIALIZERS = {
    "as_float",
    "numeric_matrix",
    "missing_mask",
    "missing_cells",
    "column",
    "row",
    "select_rows",
    "iter_blocks",
}

# (module, function) pairs allowed to break the rule.  Each entry must
# document why.
ALLOWLIST: set = set()


def _block_functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
            node.name.endswith("_block") or node.name == "detect_block"
        ):
            yield node


def _offending_calls(
    function: ast.AST,
) -> Iterator[Tuple[int, str, str]]:
    """(lineno, method, receiver description) for non-block materializers."""
    for node in ast.walk(function):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in MATERIALIZERS:
            continue
        receiver = func.value
        if isinstance(receiver, ast.Name) and receiver.id == "block":
            continue
        yield node.lineno, func.attr, ast.unparse(receiver)


def check_file(path: Path, relative: str) -> Iterator[Tuple[int, str]]:
    tree = ast.parse(path.read_text(), filename=str(path))
    for function in _block_functions(tree):
        if (relative, function.name) in ALLOWLIST:
            continue
        for lineno, method, receiver in _offending_calls(function):
            yield lineno, (
                f"{function.name} calls {receiver}.{method}(...): block "
                f"paths may materialize only from the 'block' view; "
                f"whole-table access belongs in the fit/profile step"
            )


def check_tree(src_root: Path) -> List[str]:
    violations: List[str] = []
    for relative in sorted(BLOCK_PATH_MODULES):
        path = src_root / relative
        if not path.exists():
            violations.append(f"{path}:0: declared block-path module missing")
            continue
        for lineno, message in check_file(path, relative):
            violations.append(f"{path}:{lineno}: {message}")
    return violations


def main(argv: List[str]) -> int:
    src_root = Path(argv[1]) if len(argv) > 1 else Path("src")
    if not src_root.is_dir():
        print(f"error: {src_root} is not a directory", file=sys.stderr)
        return 2
    violations = check_tree(src_root)
    for line in violations:
        print(line)
    if violations:
        print(
            f"{len(violations)} whole-table access(es) in block paths",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
