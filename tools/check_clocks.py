#!/usr/bin/env python
"""Lint: forbid wall-clock timing (``time.time``) in measurement paths.

Every duration the benchmark reports -- unit runtimes, span durations,
queue-wait histograms -- must come from a monotonic clock
(``time.perf_counter`` or ``time.monotonic``); ``time.time()`` jumps
with NTP adjustments and DST, which silently corrupts runtime panels
and makes the observability layer's serial-vs-pooled equivalence
unverifiable.  Wall-clock *timestamps* (when did this run happen) are
fine, but they must go through ``datetime.now(timezone.utc)`` so the
intent is explicit.  This script walks ``src/`` and fails on any
``time.time()`` call or ``from time import time`` import.

Usage::

    python tools/check_clocks.py [src-root]

Exit status 0 means clean; 1 means violations (printed one per line
as ``path:lineno: message``).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

# Files allowed to reference time.time(), relative to the src root.
# Each entry must document why wall-clock timing is sanctioned there.
ALLOWLIST: set = set()

_MESSAGE = (
    "wall-clock timing; use time.perf_counter/time.monotonic for "
    "durations or datetime.now(timezone.utc) for timestamps"
)


def _flag(node: ast.AST) -> bool:
    """True for ``time.time`` attribute access (module-qualified call)."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "time"
        and isinstance(node.value, ast.Name)
        and node.value.id == "time"
    )


def check_file(path: Path) -> Iterator[Tuple[int, str]]:
    tree = ast.parse(path.read_text(), filename=str(path))
    called = {
        id(node.func)
        for node in ast.walk(tree)
        if isinstance(node, ast.Call) and _flag(node.func)
    }
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and _flag(node):
            # Both direct calls and bare time.time references (passed
            # as a clock callable) are flagged -- injectable clocks
            # default to perf_counter, never wall time.
            kind = "time.time() call" if id(node) in called else (
                "time.time reference"
            )
            yield node.lineno, f"{kind} is {_MESSAGE}"
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "time":
                    yield node.lineno, (
                        f"'from time import time' is {_MESSAGE}"
                    )


def check_tree(src_root: Path) -> List[str]:
    violations: List[str] = []
    for path in sorted(src_root.rglob("*.py")):
        relative = path.relative_to(src_root).as_posix()
        if relative in ALLOWLIST:
            continue
        for lineno, message in check_file(path):
            violations.append(f"{path}:{lineno}: {message}")
    return violations


def main(argv: List[str]) -> int:
    src_root = Path(argv[1]) if len(argv) > 1 else Path("src")
    if not src_root.is_dir():
        print(f"error: {src_root} is not a directory", file=sys.stderr)
        return 2
    violations = check_tree(src_root)
    for line in violations:
        print(line)
    if violations:
        print(
            f"{len(violations)} wall-clock timing site(s) found",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
