#!/usr/bin/env python
"""Lint: keep the shared-memory data plane leak-free and zero-copy.

Two invariants, both easy to break silently in review:

1. **Segment lifecycle**: ``SharedMemory(create=True)`` allocates a
   named ``/dev/shm`` file that outlives the process unless someone
   calls ``unlink()``.  Creation is therefore confined to the data
   plane's lifecycle modules (``LIFECYCLE_MODULES``), which pair every
   create with an ``unlink`` in their teardown path; a create anywhere
   else has no owner and leaks on the first crash.  A lifecycle module
   must itself contain an ``.unlink(`` call, or it is flagged too.

2. **Zero-copy dispatch**: the whole point of the data plane is that
   ``plan.shared`` (with its embedded tables) never rides the pickle
   stream per worker or per task.  In the dispatch hot path
   (``DISPATCH_MODULES``), the ``initargs=`` of a pool constructor and
   the iterable handed to ``imap``/``imap_unordered``/``map_async``
   must not reference ``shared`` or ``plan.shared`` -- only the packed
   shipment (segment names + small shell) may cross.

Intentional exceptions live in ``ALLOWLIST`` as ``(module, lineno-name)``
entries with the reason recorded next to each.  The tier-1 suite asserts
``check_tree`` is clean (see ``tests/test_lint.py``).

Usage::

    python tools/check_dataplane.py [src-root]

Exit status 0 means clean; 1 means violations (printed one per line as
``path:lineno: message``).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: Modules allowed to create shared-memory segments; each must pair the
#: create with an unlink-bearing teardown path.
LIFECYCLE_MODULES = {
    "repro/dataplane/segments.py",
}

#: Modules whose pool dispatch is held to the zero-copy contract.
DISPATCH_MODULES = {
    "repro/parallel/engine.py",
}

#: Pool methods whose iterable is a per-task pickle stream.
DISPATCH_METHODS = {"imap", "imap_unordered", "map", "map_async", "starmap"}

# (module, function-name) pairs allowed to break the rules.  Each entry
# must document why.
ALLOWLIST: set = set()


def _calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def _is_shared_memory_create(call: ast.Call) -> bool:
    func = call.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name != "SharedMemory":
        return False
    for keyword in call.keywords:
        if keyword.arg == "create":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is True
    return False


def _references_shared(node: ast.AST) -> bool:
    """True when an expression mentions ``shared`` / ``*.shared``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == "shared":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "shared":
            return True
    return False


def _has_unlink(tree: ast.AST) -> bool:
    for call in _calls(tree):
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "unlink":
            return True
    return False


def _iter_sources(src_root: Path) -> Iterator[Tuple[Path, str]]:
    for path in sorted(src_root.rglob("*.py")):
        yield path, path.relative_to(src_root).as_posix()


def check_creates(src_root: Path) -> List[str]:
    """Rule 1: segment creation confined to unlink-paired lifecycle."""
    violations: List[str] = []
    for path, relative in _iter_sources(src_root):
        tree = ast.parse(path.read_text(), filename=str(path))
        creates = [
            call for call in _calls(tree) if _is_shared_memory_create(call)
        ]
        if not creates:
            continue
        if relative not in LIFECYCLE_MODULES:
            for call in creates:
                violations.append(
                    f"{path}:{call.lineno}: SharedMemory(create=True) "
                    f"outside the lifecycle modules -- segments created "
                    f"here have no unlink owner and leak on crash; "
                    f"allocate through repro.dataplane.segments"
                )
        elif not _has_unlink(tree):
            violations.append(
                f"{path}:{creates[0].lineno}: lifecycle module creates "
                f"segments but never calls unlink(); every create needs "
                f"a teardown path"
            )
    return violations


def _name_bindings(tree: ast.AST) -> dict:
    """Last simple ``name = expr`` binding per name, for one-hop lookup."""
    bindings: dict = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                bindings[target.id] = node.value
    return bindings


def check_dispatch(src_root: Path) -> List[str]:
    """Rule 2: no ``shared`` context in initargs / dispatch iterables."""
    violations: List[str] = []
    for relative in sorted(DISPATCH_MODULES):
        path = src_root / relative
        if not path.exists():
            violations.append(f"{path}:0: declared dispatch module missing")
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        bindings = _name_bindings(tree)

        def _expression_ships_shared(node: ast.AST) -> bool:
            if _references_shared(node):
                return True
            # One hop through a simple local binding: the iterable is
            # often built first (``units = [... shared ...]``) and
            # dispatched by name.
            if isinstance(node, ast.Name) and node.id in bindings:
                return _references_shared(bindings[node.id])
            return False

        for call in _calls(tree):
            for keyword in call.keywords:
                if keyword.arg == "initargs" and _expression_ships_shared(
                    keyword.value
                ):
                    violations.append(
                        f"{path}:{keyword.value.lineno}: initargs "
                        f"references the shared context; pass the packed "
                        f"shipment instead (tables ride segments, not "
                        f"the per-worker pickle stream)"
                    )
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in DISPATCH_METHODS
                and len(call.args) >= 2
                and _expression_ships_shared(call.args[1])
            ):
                violations.append(
                    f"{path}:{call.args[1].lineno}: {func.attr} iterable "
                    f"references the shared context; each task would "
                    f"re-pickle it -- dispatch unit specs only"
                )
    return violations


def check_tree(src_root: Path) -> List[str]:
    return check_creates(src_root) + check_dispatch(src_root)


def main(argv: List[str]) -> int:
    src_root = Path(argv[1]) if len(argv) > 1 else Path("src")
    if not src_root.is_dir():
        print(f"error: {src_root} is not a directory", file=sys.stderr)
        return 2
    violations = check_tree(src_root)
    for line in violations:
        print(line)
    if violations:
        print(
            f"{len(violations)} data-plane violation(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
