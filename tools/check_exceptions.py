#!/usr/bin/env python
"""Lint: forbid broad exception handlers outside sanctioned sites.

The resilience layer funnels every benchmark failure through
``repro.resilience.guards.guarded_call`` so it can be classified,
timed and recorded.  A stray ``except Exception`` (or a bare
``except:``) anywhere else swallows failures before the guard sees
them, producing exactly the unexplained NaNs the layer exists to
eliminate.  This script walks ``src/`` and fails if a broad handler
appears outside the allowlist below.

Usage::

    python tools/check_exceptions.py [src-root]

Exit status 0 means clean; 1 means violations (printed one per line
as ``path:lineno: message``).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

# Files allowed to contain broad handlers, relative to the src root.
# Each entry documents why the site is sanctioned.
ALLOWLIST = {
    # The single designated failure boundary: classifies, times and
    # records every exception as a FailureRecord.
    "repro/resilience/guards.py",
    # Evaluates user-supplied denial-constraint expressions; any raise
    # simply means "constraint not violated for this row".
    "repro/repair/holistic.py",
    # Applies user-derived transformation lambdas speculatively; a raise
    # means the candidate transformation does not apply.
    "repro/repair/baran.py",
    # Frozen scalar copy of the BARAN pipeline (equivalence oracle);
    # carries the same speculative-lambda handler verbatim.
    "repro/repair/_reference.py",
    # The service worker's designated failure boundary: every job
    # execution failure becomes a categorized FailureRecord on the queue.
    "repro/service/workers.py",
    # The HTTP dispatch boundary: every handler failure is mapped through
    # the taxonomy to a status code (check_service_endpoints.py enforces
    # the mapping's presence).
    "repro/service/api.py",
}

BROAD_NAMES = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:  # bare except:
        return True
    if isinstance(node, ast.Name):
        return node.id in BROAD_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in BROAD_NAMES
    if isinstance(node, ast.Tuple):
        return any(
            isinstance(elt, (ast.Name, ast.Attribute))
            and (elt.id if isinstance(elt, ast.Name) else elt.attr)
            in BROAD_NAMES
            for elt in node.elts
        )
    return False


def check_file(path: Path) -> Iterator[Tuple[int, str]]:
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and _is_broad(node):
            what = "bare except" if node.type is None else "broad except"
            yield node.lineno, (
                f"{what} outside a sanctioned site; route failures "
                "through repro.resilience.guards.guarded_call instead"
            )


def check_tree(src_root: Path) -> List[str]:
    violations: List[str] = []
    for path in sorted(src_root.rglob("*.py")):
        relative = path.relative_to(src_root).as_posix()
        if relative in ALLOWLIST:
            continue
        for lineno, message in check_file(path):
            violations.append(f"{path}:{lineno}: {message}")
    return violations


def main(argv: List[str]) -> int:
    src_root = Path(argv[1]) if len(argv) > 1 else Path("src")
    if not src_root.is_dir():
        print(f"error: {src_root} is not a directory", file=sys.stderr)
        return 2
    violations = check_tree(src_root)
    for line in violations:
        print(line)
    if violations:
        print(
            f"{len(violations)} broad exception handler(s) found",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
