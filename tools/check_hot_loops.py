#!/usr/bin/env python
"""Lint: forbid scalar-regression patterns in the vectorized ML kernels.

The ML kernels under ``src/repro/ml/`` were vectorized deliberately
(presorted split scans, batched tree routing, blocked distance GEMMs);
this lint keeps the two patterns that historically made them slow from
creeping back in:

1. **per-node sorting in split search** -- any ``np.argsort`` /
   ``numpy.argsort`` call inside a function named ``_best_split``.  The
   builder presorts every feature once at the root and threads the
   order down the recursion; re-sorting per node turns an O(n) scan
   back into O(n log n) per node.
2. **per-row Python prediction loops** -- ``for row in features`` /
   ``for i, row in enumerate(features)`` anywhere under
   ``src/repro/ml/``.  Prediction and scoring are batched; a per-row
   loop reintroduces ~10^5 Python-level descents per call.

Intentional exceptions live in ``ALLOWLIST`` with the reason recorded
next to each entry.  The tier-1 suite asserts ``check_tree`` is clean
(see ``tests/test_lint.py``), mirroring ``check_clocks.py``.

Usage::

    python tools/check_hot_loops.py [src-root]

Exit status 0 means clean; 1 means violations (printed one per line
as ``path:lineno: message``).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

# Files allowed to contain the forbidden patterns, relative to the src
# root.  Each entry must document why.
ALLOWLIST = {
    # Frozen pre-vectorization kernels kept verbatim as equivalence
    # oracles and benchmark baselines; they *must* stay scalar.
    "repro/ml/_reference.py",
    # Birch's CF-tree insertion is an inherently sequential streaming
    # pass: each row's placement depends on the tree built so far.
    "repro/ml/cluster.py",
}

#: Only this subtree is linted; scalar loops elsewhere are not hot.
SCOPE = "repro/ml"


def _is_argsort(node: ast.AST) -> bool:
    """True for ``np.argsort`` / ``numpy.argsort`` attribute access."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "argsort"
        and isinstance(node.value, ast.Name)
        and node.value.id in {"np", "numpy"}
    )


def _is_per_row_loop(node: ast.AST) -> bool:
    """True for ``for row in features`` / ``for i, row in enumerate(features)``.

    Matched structurally: a ``for`` whose iterable is a bare name or an
    ``enumerate(...)`` of one, where the row variable is literally named
    ``row`` -- the codebase's idiom for per-row scalar work on a feature
    matrix.
    """
    if not isinstance(node, ast.For):
        return False
    target = node.target
    names = []
    if isinstance(target, ast.Name):
        names = [target.id]
    elif isinstance(target, ast.Tuple):
        names = [e.id for e in target.elts if isinstance(e, ast.Name)]
    if "row" not in names:
        return False
    iterable = node.iter
    if (
        isinstance(iterable, ast.Call)
        and isinstance(iterable.func, ast.Name)
        and iterable.func.id == "enumerate"
        and iterable.args
    ):
        iterable = iterable.args[0]
    return isinstance(iterable, ast.Name)


def check_file(path: Path) -> Iterator[Tuple[int, str]]:
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == "_best_split"
        ):
            for inner in ast.walk(node):
                if _is_argsort(inner):
                    yield inner.lineno, (
                        "np.argsort inside _best_split: the builder "
                        "presorts once at the root and threads the "
                        "order down; per-node sorting is O(n log n) "
                        "per node"
                    )
        if _is_per_row_loop(node):
            yield node.lineno, (
                "per-row Python loop over a feature matrix: use the "
                "batched/vectorized kernel instead"
            )


def check_tree(src_root: Path) -> List[str]:
    violations: List[str] = []
    for path in sorted((src_root / SCOPE).rglob("*.py")):
        relative = path.relative_to(src_root).as_posix()
        if relative in ALLOWLIST:
            continue
        for lineno, message in check_file(path):
            violations.append(f"{path}:{lineno}: {message}")
    return violations


def main(argv: List[str]) -> int:
    src_root = Path(argv[1]) if len(argv) > 1 else Path("src")
    if not src_root.is_dir():
        print(f"error: {src_root} is not a directory", file=sys.stderr)
        return 2
    violations = check_tree(src_root)
    for line in violations:
        print(line)
    if violations:
        print(
            f"{len(violations)} scalar hot-loop site(s) found",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
