#!/usr/bin/env python
"""Lint: forbid scalar-regression patterns in the vectorized kernels.

The ML kernels under ``src/repro/ml/`` and the cleaning kernels under
``src/repro/detectors/``, ``src/repro/constraints/`` and
``src/repro/repair/`` were vectorized deliberately (presorted split
scans, batched tree routing, blocked distance GEMMs, hash-group
constraint joins, batched repair scoring); this lint keeps the
patterns that historically made them slow from creeping back in:

1. **per-node sorting in split search** -- any ``np.argsort`` /
   ``numpy.argsort`` call inside a function named ``_best_split``.  The
   builder presorts every feature once at the root and threads the
   order down the recursion; re-sorting per node turns an O(n) scan
   back into O(n log n) per node.
2. **per-row Python loops** -- ``for row in features`` /
   ``for i, row in enumerate(features)`` anywhere in scope, where the
   iterable is a matrix-like collection (``features``, ``matrix``,
   ``rows``, ``vectors``, ``samples``).  Detection, constraint
   checking, repair scoring and prediction are batched; a per-row loop
   reintroduces ~10^5 Python-level iterations per call.  Iterating a
   *sparse* set (``for row, column in detections``) is fine: that work
   is proportional to the error count, not the table size.
3. **quadratic pair enumeration outside blocking** -- two nested
   ``for`` loops over the *same* bare-name iterable.  All-pairs work is
   only legal inside the blocking machinery (functions whose name
   mentions ``block`` or ``pair``), where block size caps the square.
   Nested loops over column collections (``categorical``, ``columns``,
   ``names``, ``attrs``) are exempt: schema width bounds them, not row
   count.

Intentional exceptions live in ``ALLOWLIST`` with the reason recorded
next to each entry.  The tier-1 suite asserts ``check_tree`` is clean
(see ``tests/test_lint.py``), mirroring ``check_clocks.py``.

Usage::

    python tools/check_hot_loops.py [src-root]

Exit status 0 means clean; 1 means violations (printed one per line
as ``path:lineno: message``).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

# Files allowed to contain the forbidden patterns, relative to the src
# root.  Each entry must document why.
ALLOWLIST = {
    # Frozen pre-vectorization kernels kept verbatim as equivalence
    # oracles and benchmark baselines; they *must* stay scalar.
    "repro/ml/_reference.py",
    "repro/detectors/_reference.py",
    "repro/constraints/_reference.py",
    "repro/repair/_reference.py",
    # Birch's CF-tree insertion is an inherently sequential streaming
    # pass: each row's placement depends on the tree built so far.
    "repro/ml/cluster.py",
}

#: Only these subtrees are linted; scalar loops elsewhere are not hot.
SCOPE = (
    "repro/ml",
    "repro/detectors",
    "repro/constraints",
    "repro/repair",
)

#: Iterable names that denote column collections: nesting over them is
#: O(schema width^2), not O(rows^2).
COLUMN_COLLECTIONS = {"categorical", "columns", "names", "attrs"}

#: Iterable names that denote dense row-major collections.  A ``row``
#: loop over one of these scans the whole table in Python; a ``row``
#: loop over anything else (``detections``, ``holes``) is sparse.
MATRIX_COLLECTIONS = {"features", "matrix", "rows", "vectors", "samples"}


def _is_argsort(node: ast.AST) -> bool:
    """True for ``np.argsort`` / ``numpy.argsort`` attribute access."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "argsort"
        and isinstance(node.value, ast.Name)
        and node.value.id in {"np", "numpy"}
    )


def _is_per_row_loop(node: ast.AST) -> bool:
    """True for ``for row in features`` / ``for i, row in enumerate(features)``.

    Matched structurally: a ``for`` whose iterable is a matrix-like bare
    name (or an ``enumerate(...)`` of one), where the row variable is
    literally named ``row`` -- the codebase's idiom for per-row scalar
    work on a feature matrix.  Sparse iteration (``for row, column in
    detections``) deliberately does not match: the iterable name is not
    in ``MATRIX_COLLECTIONS``.
    """
    if not isinstance(node, ast.For):
        return False
    target = node.target
    names = []
    if isinstance(target, ast.Name):
        names = [target.id]
    elif isinstance(target, ast.Tuple):
        names = [e.id for e in target.elts if isinstance(e, ast.Name)]
    if "row" not in names:
        return False
    return _loop_iterable_name(node) in MATRIX_COLLECTIONS


def _loop_iterable_name(node: ast.For) -> str:
    """The bare name a ``for`` iterates, unwrapping ``enumerate``; ``""``
    when the iterable is any other expression."""
    iterable = node.iter
    if (
        isinstance(iterable, ast.Call)
        and isinstance(iterable.func, ast.Name)
        and iterable.func.id == "enumerate"
        and iterable.args
    ):
        iterable = iterable.args[0]
    return iterable.id if isinstance(iterable, ast.Name) else ""


def _pair_enumeration_sites(
    function: ast.AST,
) -> Iterator[ast.For]:
    """Inner loops of same-iterable nested ``for`` pairs inside one
    function (not descending into nested function definitions)."""

    def walk(node: ast.AST, open_names: Tuple[str, ...]) -> Iterator[ast.For]:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            names = open_names
            if isinstance(child, ast.For):
                name = _loop_iterable_name(child)
                if name and name not in COLUMN_COLLECTIONS:
                    if name in open_names:
                        yield child
                    names = open_names + (name,)
            yield from walk(child, names)

    yield from walk(function, ())


def check_file(path: Path) -> Iterator[Tuple[int, str]]:
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == "_best_split":
                for inner in ast.walk(node):
                    if _is_argsort(inner):
                        yield inner.lineno, (
                            "np.argsort inside _best_split: the builder "
                            "presorts once at the root and threads the "
                            "order down; per-node sorting is O(n log n) "
                            "per node"
                        )
            lowered = node.name.lower()
            if "block" not in lowered and "pair" not in lowered:
                for site in _pair_enumeration_sites(node):
                    yield site.lineno, (
                        "nested loops over the same iterable enumerate "
                        "all pairs in Python: route the work through "
                        "the blocking machinery or a vectorized "
                        "pairwise kernel"
                    )
        if _is_per_row_loop(node):
            yield node.lineno, (
                "per-row Python loop over a feature matrix: use the "
                "batched/vectorized kernel instead"
            )


def check_tree(src_root: Path) -> List[str]:
    violations: List[str] = []
    for scope in SCOPE:
        for path in sorted((src_root / scope).rglob("*.py")):
            relative = path.relative_to(src_root).as_posix()
            if relative in ALLOWLIST:
                continue
            for lineno, message in check_file(path):
                violations.append(f"{path}:{lineno}: {message}")
    return violations


def main(argv: List[str]) -> int:
    src_root = Path(argv[1]) if len(argv) > 1 else Path("src")
    if not src_root.is_dir():
        print(f"error: {src_root} is not a directory", file=sys.stderr)
        return 2
    violations = check_tree(src_root)
    for line in violations:
        print(line)
    if violations:
        print(
            f"{len(violations)} scalar hot-loop site(s) found",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
