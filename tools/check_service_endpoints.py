#!/usr/bin/env python
"""Lint: every service API endpoint declares a timeout and maps failures.

The HTTP API (``repro/service/api.py``) makes two promises that are
easy to erode one handler at a time:

1. Every route declares a *positive numeric literal* ``timeout`` in its
   ``@route(...)`` decorator, so a wedged handler or a stalled client
   can hold a socket thread only for a bounded time.
2. Handlers themselves contain no broad/bare ``except`` -- failures
   must propagate to the single dispatch boundary, which maps them
   through the failure taxonomy (``classify_exception``) via
   ``error_response``.

This script parses the API module and fails if either promise is
broken, or if the taxonomy boundary itself has gone missing.

Usage::

    python tools/check_service_endpoints.py [src-root]

Exit status 0 means clean; 1 means violations (printed one per line
as ``path:lineno: message``).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: The one module this lint governs, relative to the src root.
API_MODULE = "repro/service/api.py"

BROAD_NAMES = {"Exception", "BaseException"}


def _decorator_name(node: ast.expr) -> str:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Name):
        return target.id
    return ""


def _route_decorator(func: ast.FunctionDef) -> "ast.Call | None":
    for decorator in func.decorator_list:
        if isinstance(decorator, ast.Call) and _decorator_name(decorator) == "route":
            return decorator
    return None


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:  # bare except:
        return True
    if isinstance(node, ast.Name):
        return node.id in BROAD_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in BROAD_NAMES
    if isinstance(node, ast.Tuple):
        return any(
            isinstance(elt, (ast.Name, ast.Attribute))
            and (elt.id if isinstance(elt, ast.Name) else elt.attr)
            in BROAD_NAMES
            for elt in node.elts
        )
    return False


def _calls(node: ast.AST, name: str) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call) and _decorator_name(child) == name:
            return True
    return False


def _check_timeout(func: ast.FunctionDef, call: ast.Call) -> Iterator[Tuple[int, str]]:
    timeout = next(
        (kw for kw in call.keywords if kw.arg == "timeout"), None
    )
    if timeout is None:
        yield call.lineno, (
            f"route handler '{func.name}' declares no timeout; every "
            "endpoint must bound its request with timeout=<seconds>"
        )
        return
    value = timeout.value
    ok = (
        isinstance(value, ast.Constant)
        and isinstance(value.value, (int, float))
        and not isinstance(value.value, bool)
        and value.value > 0
    )
    if not ok:
        yield call.lineno, (
            f"route handler '{func.name}' must declare its timeout as a "
            "positive numeric literal, not a computed value"
        )


def _check_handler_body(func: ast.FunctionDef) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(func):
        if isinstance(node, ast.ExceptHandler) and _is_broad(node):
            what = "bare except" if node.type is None else "broad except"
            yield node.lineno, (
                f"{what} inside route handler '{func.name}'; let failures "
                "propagate to the dispatch boundary so the taxonomy maps "
                "them to a status code"
            )


def check_file(path: Path) -> Iterator[Tuple[int, str]]:
    tree = ast.parse(path.read_text(), filename=str(path))

    routed = 0
    in_handlers = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            call = _route_decorator(node)
            if call is not None:
                routed += 1
                yield from _check_timeout(node, call)
                yield from _check_handler_body(node)
                in_handlers.update(id(child) for child in ast.walk(node))

    boundaries: List[ast.ExceptHandler] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler) or id(node) in in_handlers:
            continue
        if node.type is None:
            yield node.lineno, (
                "bare except in the API module; even the dispatch "
                "boundary must name Exception explicitly"
            )
        elif _is_broad(node):
            boundaries.append(node)

    if routed == 0:
        yield 1, "no @route-decorated handlers found; API module is empty"
    if not boundaries:
        yield 1, (
            "no dispatch boundary (broad except mapping failures via "
            "error_response) found in the API module"
        )
    for boundary in boundaries:
        if not any(_calls(stmt, "error_response") for stmt in boundary.body):
            yield boundary.lineno, (
                "broad except in the API module that does not map the "
                "failure through error_response"
            )
    if not _calls(tree, "classify_exception"):
        yield 1, (
            "API module never calls classify_exception; unexpected "
            "failures must be mapped through the failure taxonomy"
        )


def check_tree(src_root: Path) -> List[str]:
    path = src_root / API_MODULE
    if not path.is_file():
        return [f"{path}:1: service API module missing"]
    return [
        f"{path}:{lineno}: {message}" for lineno, message in check_file(path)
    ]


def main(argv: List[str]) -> int:
    src_root = Path(argv[1]) if len(argv) > 1 else Path("src")
    if not src_root.is_dir():
        print(f"error: {src_root} is not a directory", file=sys.stderr)
        return 2
    violations = check_tree(src_root)
    for line in violations:
        print(line)
    if violations:
        print(
            f"{len(violations)} service endpoint violation(s) found",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
